package nameserver

// Native fuzz targets for the binary wire codec. The decoder's contract
// under fuzzing: arbitrary bytes never panic it and never read past the
// frame; any bytes it accepts decode to a value whose re-encoding is
// stable (encode→decode→encode is a fixed point) and which survives a
// gob round-trip unchanged — the two codecs may never disagree about a
// value either one produced. CI runs each target briefly on every push;
// `go test -fuzz FuzzBinaryRequest ./internal/nameserver` explores
// further.

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

func FuzzBinaryRequest(f *testing.F) {
	req := populated()["request"].(request)
	f.Add(appendRequest(nil, &req))
	f.Add(appendRequest(nil, &request{ID: 1}))
	f.Add(appendRequest(nil, &request{ID: 2, Paths: [][]string{{"a"}, {}, {"b", "c"}}}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 16)) // maximal varints
	f.Fuzz(func(t *testing.T, data []byte) {
		var sc workerScratch
		var req request
		if err := parseRequest(data, &req, &sc); err != nil {
			return // rejected input is fine; panicking or over-reading is not
		}
		body := appendRequest(nil, &req)
		var again request
		var sc2 workerScratch
		if err := parseRequest(body, &again, &sc2); err != nil {
			t.Fatalf("re-encoded accepted request failed to parse: %v\n body %x", err, body)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("request round trip not a fixed point:\n first  %#v\n second %#v", req, again)
		}
		if stable := appendRequest(nil, &again); !bytes.Equal(body, stable) {
			t.Fatalf("request re-encode not byte-stable:\n %x\n %x", body, stable)
		}
		if viaGob := gobRoundTrip(t, req).(request); !reflect.DeepEqual(req, viaGob) {
			t.Fatalf("codecs disagree on accepted request:\n binary %#v\n gob    %#v", req, viaGob)
		}
	})
}

func FuzzBinaryResponse(f *testing.F) {
	resp := populated()["response"].(response)
	f.Add(appendResponse(nil, &resp))
	f.Add(appendResponse(nil, &response{ID: 1, Rev: 9}))
	f.Add(appendResponse(nil, &response{ID: 0, Invalidation: true}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x80}, 12)) // non-terminating varint
	f.Fuzz(func(t *testing.T, data []byte) {
		var errs strIntern
		var resp response
		if err := parseResponse(data, &resp, &errs); err != nil {
			return
		}
		body := appendResponse(nil, &resp)
		var again response
		if err := parseResponse(body, &again, &errs); err != nil {
			t.Fatalf("re-encoded accepted response failed to parse: %v\n body %x", err, body)
		}
		if !reflect.DeepEqual(resp, again) {
			t.Fatalf("response round trip not a fixed point:\n first  %#v\n second %#v", resp, again)
		}
		if stable := appendResponse(nil, &again); !bytes.Equal(body, stable) {
			t.Fatalf("response re-encode not byte-stable:\n %x\n %x", body, stable)
		}
		if viaGob := gobRoundTrip(t, resp).(response); !reflect.DeepEqual(resp, viaGob) {
			t.Fatalf("codecs disagree on accepted response:\n binary %#v\n gob    %#v", resp, viaGob)
		}
	})
}

// FuzzBinaryFrame drives the frame layer: a length prefix plus arbitrary
// body bytes. readFrame must never panic, never hand back more bytes
// than the stream held, and must enforce the frame size bound.
func FuzzBinaryFrame(f *testing.F) {
	req := populated()["request"].(request)
	var framed bytes.Buffer
	bw := bufio.NewWriter(&framed)
	if err := writeFrame(bw, appendRequest(nil, &req)); err != nil {
		f.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(framed.Bytes())
	f.Add([]byte{0})                            // empty frame
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // length far past maxFrame
	f.Fuzz(func(t *testing.T, data []byte) {
		var buf []byte
		body, err := readFrame(bufio.NewReader(bytes.NewReader(data)), &buf)
		if err != nil {
			return
		}
		if len(body) > len(data) {
			t.Fatalf("readFrame returned %d bytes from a %d-byte stream", len(body), len(data))
		}
		if len(body) > maxFrame {
			t.Fatalf("readFrame accepted a %d-byte frame past the %d bound", len(body), maxFrame)
		}
	})
}
