package nameserver

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"namecoherence/internal/core"
)

func TestResolveBatch(t *testing.T) {
	w, tr, f := exportedTree(t)
	if _, err := tr.Create(core.ParsePath("etc/motd"), "hi"); err != nil {
		t.Fatal(err)
	}
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s)

	paths := []core.Path{
		core.ParsePath("usr/bin/ls"),
		core.ParsePath("no/such/name"),
		core.ParsePath("etc/motd"),
	}
	results, err := c.ResolveBatch(paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("len(results) = %d", len(results))
	}
	if results[0].Err != nil || results[0].Entity != f {
		t.Fatalf("results[0] = %+v, want %v", results[0], f)
	}
	var re *RemoteError
	if !errors.As(results[1].Err, &re) {
		t.Fatalf("results[1].Err = %v, want RemoteError", results[1].Err)
	}
	if results[2].Err != nil || results[2].Entity.IsUndefined() {
		t.Fatalf("results[2] = %+v", results[2])
	}
	if s.Served() != 1 {
		t.Fatalf("Served = %d, want 1 (one wire request for the whole batch)", s.Served())
	}
	if s.Resolved() != 3 {
		t.Fatalf("Resolved = %d, want 3", s.Resolved())
	}
}

func TestResolveBatchCacheAndDuplicates(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s, WithCache(16))

	p := core.ParsePath("usr/bin/ls")
	// Duplicates within one batch cross the wire once.
	results, err := c.ResolveBatch([]core.Path{p, p, p})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Entity != f {
			t.Fatalf("results[%d] = %+v", i, r)
		}
	}
	if s.Resolved() != 1 {
		t.Fatalf("Resolved = %d, want 1 (batch deduplicates)", s.Resolved())
	}
	// A second batch is answered from the cache entirely.
	if _, err := c.ResolveBatch([]core.Path{p, p}); err != nil {
		t.Fatal(err)
	}
	if s.Served() != 1 {
		t.Fatalf("Served = %d, want 1 (cache absorbs the second batch)", s.Served())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 3 {
		t.Fatalf("Stats = (%d, %d), want (2, 3)", hits, misses)
	}
}

func TestResolveBatchEmpty(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s)
	results, err := c.ResolveBatch(nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("ResolveBatch(nil) = %v, %v", results, err)
	}
	if s.Served() != 0 {
		t.Fatalf("Served = %d, want 0", s.Served())
	}
}

func TestBatchCoherentPurge(t *testing.T) {
	w, tr, _ := exportedTree(t)
	if _, err := tr.Create(core.ParsePath("etc/motd"), "hi"); err != nil {
		t.Fatal(err)
	}
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s, WithCoherentCache(16))

	if _, err := c.Resolve(core.ParsePath("etc/motd")); err != nil {
		t.Fatal(err)
	}
	s.Bump()
	// The next batch response carries the new revision and purges.
	if _, err := c.ResolveBatch([]core.Path{core.ParsePath("usr/bin/ls")}); err != nil {
		t.Fatal(err)
	}
	if c.Purges() != 1 {
		t.Fatalf("Purges = %d, want 1", c.Purges())
	}
}

func TestRoutesFetch(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s)

	// A server outside any cluster has no routing table.
	if _, err := c.Routes(); err == nil {
		t.Fatal("Routes on a plain server should fail")
	}

	want := &RouteInfo{
		Prefixes: map[string]int{"usr": 0, "etc": 1},
		Default:  0,
		Addrs:    []string{"127.0.0.1:1", "127.0.0.1:2"},
	}
	s.SetRoutes(want)
	got, err := c.Routes()
	if err != nil {
		t.Fatal(err)
	}
	if got.Default != want.Default || len(got.Addrs) != 2 || got.Prefixes["etc"] != 1 {
		t.Fatalf("Routes = %+v", got)
	}
	if s.Served() != 2 {
		t.Fatalf("Served = %d, want 2", s.Served())
	}
	if s.Resolved() != 0 {
		t.Fatalf("Resolved = %d, want 0 (routing fetches resolve nothing)", s.Resolved())
	}
}

func TestRouteInfoShardFor(t *testing.T) {
	r := &RouteInfo{Prefixes: map[string]int{"usr": 2}, Default: 1}
	if got := r.ShardFor(core.ParsePath("usr/bin/ls")); got != 2 {
		t.Fatalf("ShardFor(usr/...) = %d, want 2", got)
	}
	if got := r.ShardFor(core.ParsePath("etc/passwd")); got != 1 {
		t.Fatalf("ShardFor(etc/...) = %d, want 1 (default)", got)
	}
	if got := r.ShardFor(nil); got != 1 {
		t.Fatalf("ShardFor(root) = %d, want 1 (default)", got)
	}
}

// bumpingContext wraps the export context so that the first lookup of a
// chosen component runs a mutation before returning — a deterministic stand-in
// for a binding change racing an in-flight resolution.
type bumpingContext struct {
	core.Context
	trigger core.Name
	once    sync.Once
	mutate  func()
}

func (c *bumpingContext) Lookup(n core.Name) core.Entity {
	e := c.Context.Lookup(n)
	if n == c.trigger {
		c.once.Do(c.mutate)
	}
	return e
}

// TestRevisionSampledAfterResolution is the regression test for the
// revision race: the revision used to be sampled before resolution, so a
// Bump during resolution paired the post-change binding with the stale
// revision and deferred the coherent-cache purge by a full round-trip.
func TestRevisionSampledAfterResolution(t *testing.T) {
	w, tr, _ := exportedTree(t)

	// While the server resolves usr/bin/ls (at the lookup of "usr"), rebind
	// ls and bump — exactly what WatchExport does on a racing write.
	binDir, err := tr.Lookup(core.ParsePath("usr/bin"))
	if err != nil {
		t.Fatal(err)
	}
	binCtx, _ := w.ContextOf(binDir)
	newLs := w.NewObject("new-ls")

	var s *Server
	wrapped := &bumpingContext{
		Context: tr.RootContext(),
		trigger: "usr",
		mutate: func() {
			binCtx.Bind("ls", newLs)
			s.Bump()
		},
	}
	s = NewServer(w, wrapped)

	resp := s.handle(&workerScratch{req: request{Path: []string{"usr", "bin", "ls"}}})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if got := core.EntityID(resp.Ent); got != newLs.ID {
		t.Fatalf("resolved ID = %d, want the rebound entity %d", got, newLs.ID)
	}
	if resp.Rev != s.Revision() {
		t.Fatalf("Rev = %d, want the post-change revision %d (stale revision defeats the one-round-trip staleness bound)",
			resp.Rev, s.Revision())
	}
}

// TestRevisionRaceEndToEnd drives the same race through a coherent-cache
// client: the response that carries the racing change's binding must also
// carry the new revision, so the purge happens on that very round-trip.
func TestRevisionRaceEndToEnd(t *testing.T) {
	w, tr, _ := exportedTree(t)
	if _, err := tr.Create(core.ParsePath("etc/motd"), "hi"); err != nil {
		t.Fatal(err)
	}
	binDir, err := tr.Lookup(core.ParsePath("usr/bin"))
	if err != nil {
		t.Fatal(err)
	}
	binCtx, _ := w.ContextOf(binDir)
	newLs := w.NewObject("new-ls")

	var s *Server
	wrapped := &bumpingContext{
		Context: tr.RootContext(),
		trigger: "usr",
		mutate: func() {
			binCtx.Bind("ls", newLs)
			s.Bump()
		},
	}
	s = NewServer(w, wrapped)
	c := pipeClient(t, s, WithCoherentCache(16))

	// Prime the cache at revision 0.
	if _, err := c.Resolve(core.ParsePath("etc/motd")); err != nil {
		t.Fatal(err)
	}
	// This resolution races the rebind+bump; with the fix its response
	// already carries revision 1 and purges the stale motd entry.
	got, err := c.Resolve(core.ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	if got != newLs {
		t.Fatalf("Resolve = %v, want %v", got, newLs)
	}
	if c.Purges() != 1 {
		t.Fatalf("Purges = %d, want 1 (purge must not be deferred past the racing round-trip)", c.Purges())
	}
}

// TestClientConcurrentUse exercises one Client over one connection from
// many goroutines under the race detector: requests must pair with their
// responses and the hit/miss counters must stay consistent.
func TestClientConcurrentUse(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent wire stress test")
	}
	w, tr, _ := exportedTree(t)
	const names = 8
	paths := make([]core.Path, names)
	entities := make([]core.Entity, names)
	for i := range paths {
		p := core.ParsePath(fmt.Sprintf("dir/f%02d", i))
		e, err := tr.Create(p, "x")
		if err != nil {
			t.Fatal(err)
		}
		paths[i], entities[i] = p, e
	}
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s, WithCache(names))

	const goroutines, rounds = 16, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % names
				if r%5 == 4 {
					// Mix batches in: same connection, same pairing rules.
					res, err := c.ResolveBatch([]core.Path{paths[i], paths[(i+1)%names]})
					if err != nil {
						errs <- err
						return
					}
					if res[0].Entity != entities[i] || res[1].Entity != entities[(i+1)%names] {
						errs <- fmt.Errorf("goroutine %d: batch mismatch", g)
						return
					}
					continue
				}
				got, err := c.Resolve(paths[i])
				if err != nil {
					errs <- err
					return
				}
				if got != entities[i] {
					errs <- fmt.Errorf("goroutine %d: Resolve(%v) = %v, want %v (response pairing broken)",
						g, paths[i], got, entities[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses := c.Stats()
	// Every lookup is either a hit or a miss; batches count per name.
	want := 0
	for g := 0; g < goroutines; g++ {
		for r := 0; r < rounds; r++ {
			if r%5 == 4 {
				want += 2
			} else {
				want++
			}
		}
	}
	if hits+misses != want {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, want)
	}
	if s.Resolved() != misses {
		t.Fatalf("server resolved %d names, client missed %d — they must match", s.Resolved(), misses)
	}
}
