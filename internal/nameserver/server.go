package nameserver

import (
	"bufio"
	"encoding/gob"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"namecoherence/internal/core"
)

// Clone returns an independent copy.
func (r *RouteInfo) Clone() *RouteInfo {
	c := &RouteInfo{
		Prefixes: make(map[string]int, len(r.Prefixes)),
		Default:  r.Default,
		Addrs:    append([]string(nil), r.Addrs...),
	}
	for p, s := range r.Prefixes {
		c.Prefixes[p] = s
	}
	if r.Replicas != nil {
		c.Replicas = make([][]string, len(r.Replicas))
		for i, addrs := range r.Replicas {
			c.Replicas[i] = append([]string(nil), addrs...)
		}
	}
	return c
}

// ReplicaAddrs returns every address serving the given shard: the replica
// list when the deployment is replicated, else just the primary address.
func (r *RouteInfo) ReplicaAddrs(shard int) []string {
	if shard < len(r.Replicas) && len(r.Replicas[shard]) > 0 {
		return append([]string(nil), r.Replicas[shard]...)
	}
	return []string{r.Addrs[shard]}
}

// ShardFor returns the shard index serving the given path.
func (r *RouteInfo) ShardFor(p core.Path) int {
	if len(p) > 0 {
		if s, ok := r.Prefixes[string(p[0])]; ok {
			return s
		}
	}
	return r.Default
}

// serveWriteTimeout bounds each response write so a stalled peer cannot
// pin a server goroutine forever.
const serveWriteTimeout = time.Minute

// Server resolves names in an exported context on behalf of remote
// clients. Each connection is served by a leader/followers pool of
// resolver goroutines — whoever holds the decode token reads the next
// request, hands the token on, and resolves what it read — so one
// connection can carry many requests in flight; responses are written as
// resolutions complete, each tagged with the ID of the request it
// answers.
type Server struct {
	world   *core.World
	export  core.Context
	workers int // per-connection resolver pool size; immutable after NewServer

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	served   int
	resolved int
	rev      uint64
	routes   *RouteInfo
	wg       sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption interface {
	apply(*Server)
}

type workersOption int

func (o workersOption) apply(s *Server) {
	if int(o) > 0 {
		s.workers = int(o)
	}
}

// WithWorkers bounds how many requests one connection resolves
// concurrently (default: GOMAXPROCS). Decoding stalls once every worker
// is mid-resolution, so a single connection cannot occupy more than n
// resolver goroutines no matter how deep the client pipelines.
func WithWorkers(n int) ServerOption {
	return workersOption(n)
}

// NewServer returns a server exporting the given context of world.
func NewServer(w *core.World, export core.Context, opts ...ServerOption) *Server {
	s := &Server{
		world:   w,
		export:  export,
		workers: runtime.GOMAXPROCS(0),
		conns:   make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// Serve accepts connections on ln until Close is called, serving each
// connection on its own goroutine. It returns after the listener fails
// (normally: because Close closed it).
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// connState bundles the wire state one connection's worker pool shares.
// The decoder is guarded by dtoken and the encoder by wtoken — capacity-1
// token channels rather than mutexes, because encoding to the peer is
// wire I/O and no sync.Mutex may be held across wire I/O (lockheld).
type connState struct {
	conn      net.Conn
	dec       *gob.Decoder  // guarded by dtoken
	bw        *bufio.Writer // guarded by wtoken
	enc       *gob.Encoder  // guarded by wtoken
	dtoken    chan struct{} // capacity 1; held by the worker currently decoding
	wtoken    chan struct{} // capacity 1; held while encoding and flushing
	wq        atomic.Int32  // declared write intents; >0 after our encode elides our flush
	wdeadline time.Time     // armed write deadline; guarded by wtoken
	deadOnce  sync.Once
}

// die marks the stream unusable: the conn closes, failing any in-progress
// read or write, and each worker's next decode errors out — the decode
// token keeps circulating through the failing decodes, so the whole pool
// drains.
func (st *connState) die() {
	st.deadOnce.Do(func() {
		_ = st.conn.Close()
	})
}

// ServeConn serves one connection until EOF or error, then closes it. It
// may be called directly (e.g. with one end of a net.Pipe).
//
// Requests are decoded in arrival order but resolved concurrently by up
// to s.workers goroutines, so responses can be written out of request
// order; each echoes its request's ID so the client can pair them up.
func (s *Server) ServeConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	st := &connState{
		conn:   conn,
		dec:    gob.NewDecoder(bufio.NewReader(conn)),
		bw:     bufio.NewWriter(conn),
		dtoken: make(chan struct{}, 1),
		wtoken: make(chan struct{}, 1),
	}
	st.enc = gob.NewEncoder(st.bw)
	var wg sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveRequests(st)
		}()
	}
	wg.Wait()
}

// serveRequests is one worker in a connection's leader/followers pool:
// whoever holds the decode token reads the next request, releases the
// token so another worker can read the one after, then resolves and
// writes the response itself. Decoding and encoding each stay
// single-streamed while up to s.workers resolutions run concurrently —
// and a serial client's request runs decode→resolve→encode on one
// goroutine with no handoffs at all.
func (s *Server) serveRequests(st *connState) {
	for {
		st.dtoken <- struct{}{}
		var req request
		// An idle read blocks until the peer speaks; Close unblocks it by
		// closing the conn (conndeadline's idle-loop exemption knows this).
		err := st.dec.Decode(&req)
		<-st.dtoken
		if err != nil {
			st.die() // EOF or broken peer; drain the rest of the pool
			return
		}
		resp := s.handle(req)
		resp.ID = req.ID
		names := len(req.Paths)
		if req.Paths == nil && !req.Routes {
			names = 1
		}
		s.mu.Lock()
		s.served++
		s.resolved += names
		s.mu.Unlock()
		s.respond(st, &resp)
	}
}

// respond writes one response under the connection's write token. The
// flush is elided when another worker has already declared a write
// intent — workers never abandon a declared intent, so that worker's own
// flush is guaranteed to carry our bytes and a burst of pipelined
// responses rides one syscall.
func (s *Server) respond(st *connState, resp *response) {
	st.wq.Add(1)
	st.wtoken <- struct{}{}
	now := time.Now()
	if st.wdeadline.Sub(now) < serveWriteTimeout/2 {
		// The write bound is a liveness backstop, not a precise timer, so
		// re-arm it lazily at half horizon and let it ride across writes.
		st.wdeadline = now.Add(serveWriteTimeout)
		_ = st.conn.SetWriteDeadline(st.wdeadline)
	}
	err := st.enc.Encode(resp)
	if rem := st.wq.Add(-1); err == nil && rem == 0 {
		// Flush at the message boundary: gob alone issues several small
		// writes per message, each a syscall on a real conn.
		err = st.bw.Flush()
	}
	<-st.wtoken
	if err != nil {
		// The stream died mid-message; kill the conn so the decoders stop
		// instead of queueing answers nobody will read.
		st.die()
	}
}

// handle serves one wire request.
func (s *Server) handle(req request) response {
	switch {
	case req.Routes:
		s.mu.Lock()
		routes := s.routes
		s.mu.Unlock()
		if routes == nil {
			return response{Err: "no routing table: server is not a cluster member"}
		}
		return response{Routes: routes.Clone()}
	case req.Paths != nil:
		results := make([]result, len(req.Paths))
		rev := s.withStableRevision(func() {
			for i, raw := range req.Paths {
				results[i] = s.resolveOne(raw)
			}
		})
		return response{Rev: rev, Results: results}
	default:
		var res result
		rev := s.withStableRevision(func() {
			res = s.resolveOne(req.Path)
		})
		return response{Ent: res.ID, Kind: res.Kind, Rev: rev, Err: res.Err}
	}
}

// withStableRevision runs resolve and returns a revision consistent with
// the bindings it read. The revision is sampled after resolution — sampling
// before would let a concurrent Bump pair a fresh binding with a stale
// revision, deferring the coherent-cache purge by one round-trip and
// breaking WithCoherentCache's staleness bound. If the revision moved while
// resolving, the resolution raced a binding change and is retried against
// the newer revision; if it never settles, the pre-resolution revision is
// returned, which at worst forces the client to purge again next trip
// (conservative, never stale).
func (s *Server) withStableRevision(resolve func()) uint64 {
	rev := s.Revision()
	for attempt := 0; ; attempt++ {
		resolve()
		after := s.Revision()
		if after == rev || attempt == 3 {
			return rev
		}
		rev = after
	}
}

// resolveOne resolves one wire path in the exported context. The path is
// re-validated here even though well-behaved clients canonicalize before
// sending: the wire trusts no peer's parser (§6 — coherence is checked
// where the name is used, not only where it was made).
func (s *Server) resolveOne(raw []string) result {
	p := make(core.Path, len(raw))
	for i, c := range raw {
		p[i] = core.Name(c)
	}
	if err := checkWireCanonical(p); err != nil {
		return result{Err: err.Error()}
	}
	e, err := s.world.Resolve(s.export, p)
	if err != nil {
		return result{Err: err.Error()}
	}
	return result{ID: uint64(e.ID), Kind: uint8(e.Kind)}
}

// Bump advances the server's binding revision. Coherent client caches
// purge their entries at the next round-trip after a bump, bounding cache
// staleness to one request. Call it whenever the exported naming graph
// changes, or let WatchExport do so automatically.
func (s *Server) Bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rev++
}

// Revision returns the current binding revision.
func (s *Server) Revision() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rev
}

// SetRevision installs an absolute binding revision. Recovery uses it to
// resume a restored shard at the revision its snapshot was committed
// under, so clients that survived the restart see a revision no older
// than the one they already observed.
func (s *Server) SetRevision(rev uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rev = rev
}

// SetRoutes installs the routing table this server hands to clients that
// ask (cluster members all carry the same table, so any member can
// bootstrap a cluster client).
func (s *Server) SetRoutes(routes *RouteInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.routes = routes.Clone()
}

// WatchExport wraps every directory reachable from root so that any
// binding change bumps the server revision, and returns how many
// directories are now watched. Directories created later are not covered
// until WatchExport is called again.
func (s *Server) WatchExport(root core.Entity) int {
	return s.world.WatchReachable(root, func(core.Name, core.Entity) {
		s.Bump()
	})
}

// Served returns the number of wire requests handled so far (a batch
// counts once — that is the point of batching).
func (s *Server) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Resolved returns the number of names resolved so far (every element of a
// batch counts).
func (s *Server) Resolved() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resolved
}

// Close stops the listener, closes active connections, and waits for
// connection handlers started by Serve to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.listener
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
}
