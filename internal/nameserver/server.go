package nameserver

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"namecoherence/internal/core"
)

// request is a resolve request on the wire.
type request struct {
	// Path is the compound name, one component per element.
	Path []string
}

// response is the server's answer.
type response struct {
	// ID and Kind identify the resolved entity (0 on failure).
	ID   uint64
	Kind uint8
	// Rev is the server's binding revision at answer time; coherent client
	// caches purge stale entries when it advances.
	Rev uint64
	// Err carries the failure message, empty on success.
	Err string
}

// Server resolves names in an exported context on behalf of remote clients.
type Server struct {
	world  *core.World
	export core.Context

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	served   int
	rev      uint64
	wg       sync.WaitGroup
}

// NewServer returns a server exporting the given context of world.
func NewServer(w *core.World, export core.Context) *Server {
	return &Server{world: w, export: export, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close is called, serving each
// connection on its own goroutine. It returns after the listener fails
// (normally: because Close closed it).
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// ServeConn serves one connection until EOF or error, then closes it.
// It may be called directly (e.g. with one end of a net.Pipe).
func (s *Server) ServeConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken peer
		}
		resp := s.handle(req)
		s.mu.Lock()
		s.served++
		s.mu.Unlock()
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req request) response {
	p := make(core.Path, len(req.Path))
	for i, c := range req.Path {
		p[i] = core.Name(c)
	}
	s.mu.Lock()
	rev := s.rev
	s.mu.Unlock()
	e, err := s.world.Resolve(s.export, p)
	if err != nil {
		return response{Rev: rev, Err: err.Error()}
	}
	return response{ID: uint64(e.ID), Kind: uint8(e.Kind), Rev: rev}
}

// Bump advances the server's binding revision. Coherent client caches
// purge their entries at the next round-trip after a bump, bounding cache
// staleness to one request. Call it whenever the exported naming graph
// changes, or let WatchExport do so automatically.
func (s *Server) Bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rev++
}

// Revision returns the current binding revision.
func (s *Server) Revision() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rev
}

// WatchExport wraps every directory reachable from root so that any
// binding change bumps the server revision, and returns how many
// directories are now watched. Directories created later are not covered
// until WatchExport is called again.
func (s *Server) WatchExport(root core.Entity) int {
	return s.world.WatchReachable(root, func(core.Name, core.Entity) {
		s.Bump()
	})
}

// Served returns the number of requests handled so far.
func (s *Server) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Close stops the listener, closes active connections, and waits for
// connection handlers started by Serve to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.listener
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
}

// RemoteError is a resolution failure reported by the server.
type RemoteError struct {
	// Msg is the server-side error message.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "remote: " + e.Msg }

// Client is a connection to a name server with an optional resolution
// cache. Client is safe for concurrent use; requests are serialized on the
// connection.
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	enc      *gob.Encoder
	dec      *gob.Decoder
	cache    map[string]core.Entity
	limit    int
	coherent bool
	rev      uint64
	hits     int
	misses   int
	purges   int
}

// ClientOption configures a Client.
type ClientOption interface {
	apply(*Client)
}

type cacheOption int

func (o cacheOption) apply(c *Client) {
	c.limit = int(o)
	c.cache = make(map[string]core.Entity)
}

// WithCache enables a client-side resolution cache of at most n entries.
// The cache is never invalidated; it models the (coherence-agnostic) name
// caches common in directory services.
func WithCache(n int) ClientOption {
	return cacheOption(n)
}

type coherentCacheOption int

func (o coherentCacheOption) apply(c *Client) {
	c.limit = int(o)
	c.cache = make(map[string]core.Entity)
	c.coherent = true
}

// WithCoherentCache enables a revision-tracked cache of at most n entries:
// every response carries the server's binding revision, and when it
// advances the whole cache is purged before the new entry is stored. Cache
// staleness is thus bounded by one round-trip after a server-side change
// (pair with Server.WatchExport for automatic bumping).
func WithCoherentCache(n int) ClientOption {
	return coherentCacheOption(n)
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn, opts ...ClientOption) *Client {
	c := &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	for _, o := range opts {
		o.apply(c)
	}
	return c
}

// Dial connects to a server listening at addr.
func Dial(network, addr string, opts ...ClientOption) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("dial name server: %w", err)
	}
	return NewClient(conn, opts...), nil
}

// Resolve resolves the compound name at the server (or the cache).
func (c *Client) Resolve(p core.Path) (core.Entity, error) {
	key := p.String()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cache != nil {
		if e, ok := c.cache[key]; ok {
			c.hits++
			return e, nil
		}
	}
	c.misses++
	req := request{Path: make([]string, len(p))}
	for i, n := range p {
		req.Path[i] = string(n)
	}
	if err := c.enc.Encode(req); err != nil {
		return core.Undefined, fmt.Errorf("send resolve %q: %w", p, err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return core.Undefined, fmt.Errorf("resolve %q: server closed: %w", p, err)
		}
		return core.Undefined, fmt.Errorf("recv resolve %q: %w", p, err)
	}
	if c.coherent && resp.Rev != c.rev {
		// The exported graph changed since our entries were fetched:
		// purge before trusting anything new.
		if len(c.cache) > 0 {
			c.cache = make(map[string]core.Entity)
			c.purges++
		}
		c.rev = resp.Rev
	}
	if resp.Err != "" {
		return core.Undefined, &RemoteError{Msg: resp.Err}
	}
	e := core.Entity{ID: core.EntityID(resp.ID), Kind: core.Kind(resp.Kind)}
	if c.cache != nil {
		if len(c.cache) >= c.limit {
			// Evict an arbitrary entry; fine for a measurement cache.
			for k := range c.cache {
				delete(c.cache, k)
				break
			}
		}
		c.cache[key] = e
	}
	return e, nil
}

// Stats returns cache hits and misses so far.
func (c *Client) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purges returns how many times the coherent cache has been invalidated.
func (c *Client) Purges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.purges
}

// Close closes the connection.
func (c *Client) Close() error {
	return c.conn.Close()
}
