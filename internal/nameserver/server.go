package nameserver

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"namecoherence/internal/core"
	"namecoherence/internal/lru"
)

// Clone returns an independent copy.
func (r *RouteInfo) Clone() *RouteInfo {
	c := &RouteInfo{
		Prefixes: make(map[string]int, len(r.Prefixes)),
		Default:  r.Default,
		Addrs:    append([]string(nil), r.Addrs...),
	}
	for p, s := range r.Prefixes {
		c.Prefixes[p] = s
	}
	if r.Replicas != nil {
		c.Replicas = make([][]string, len(r.Replicas))
		for i, addrs := range r.Replicas {
			c.Replicas[i] = append([]string(nil), addrs...)
		}
	}
	return c
}

// ReplicaAddrs returns every address serving the given shard: the replica
// list when the deployment is replicated, else just the primary address.
func (r *RouteInfo) ReplicaAddrs(shard int) []string {
	if shard < len(r.Replicas) && len(r.Replicas[shard]) > 0 {
		return append([]string(nil), r.Replicas[shard]...)
	}
	return []string{r.Addrs[shard]}
}

// ShardFor returns the shard index serving the given path.
func (r *RouteInfo) ShardFor(p core.Path) int {
	if len(p) > 0 {
		if s, ok := r.Prefixes[string(p[0])]; ok {
			return s
		}
	}
	return r.Default
}

// Server resolves names in an exported context on behalf of remote clients.
type Server struct {
	world  *core.World
	export core.Context

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	served   int
	resolved int
	rev      uint64
	routes   *RouteInfo
	wg       sync.WaitGroup
}

// NewServer returns a server exporting the given context of world.
func NewServer(w *core.World, export core.Context) *Server {
	return &Server{world: w, export: export, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close is called, serving each
// connection on its own goroutine. It returns after the listener fails
// (normally: because Close closed it).
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// ServeConn serves one connection until EOF or error, then closes it.
// It may be called directly (e.g. with one end of a net.Pipe).
func (s *Server) ServeConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		// An idle read blocks until the peer speaks; Close unblocks it by
		// closing the conn (conndeadline's idle-loop exemption knows this).
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken peer
		}
		resp := s.handle(req)
		names := len(req.Paths)
		if req.Paths == nil && !req.Routes {
			names = 1
		}
		s.mu.Lock()
		s.served++
		s.resolved += names
		s.mu.Unlock()
		_ = conn.SetWriteDeadline(time.Now().Add(serveWriteTimeout))
		if err := enc.Encode(resp); err != nil {
			return
		}
		_ = conn.SetWriteDeadline(time.Time{})
	}
}

// handle serves one wire request.
func (s *Server) handle(req request) response {
	switch {
	case req.Routes:
		s.mu.Lock()
		routes := s.routes
		s.mu.Unlock()
		if routes == nil {
			return response{Err: "no routing table: server is not a cluster member"}
		}
		return response{Routes: routes.Clone()}
	case req.Paths != nil:
		results := make([]result, len(req.Paths))
		rev := s.withStableRevision(func() {
			for i, raw := range req.Paths {
				results[i] = s.resolveOne(raw)
			}
		})
		return response{Rev: rev, Results: results}
	default:
		var res result
		rev := s.withStableRevision(func() {
			res = s.resolveOne(req.Path)
		})
		return response{ID: res.ID, Kind: res.Kind, Rev: rev, Err: res.Err}
	}
}

// withStableRevision runs resolve and returns a revision consistent with
// the bindings it read. The revision is sampled after resolution — sampling
// before would let a concurrent Bump pair a fresh binding with a stale
// revision, deferring the coherent-cache purge by one round-trip and
// breaking WithCoherentCache's staleness bound. If the revision moved while
// resolving, the resolution raced a binding change and is retried against
// the newer revision; if it never settles, the pre-resolution revision is
// returned, which at worst forces the client to purge again next trip
// (conservative, never stale).
func (s *Server) withStableRevision(resolve func()) uint64 {
	rev := s.Revision()
	for attempt := 0; ; attempt++ {
		resolve()
		after := s.Revision()
		if after == rev || attempt == 3 {
			return rev
		}
		rev = after
	}
}

// resolveOne resolves one wire path in the exported context. The path is
// re-validated here even though well-behaved clients canonicalize before
// sending: the wire trusts no peer's parser (§6 — coherence is checked
// where the name is used, not only where it was made).
func (s *Server) resolveOne(raw []string) result {
	p := make(core.Path, len(raw))
	for i, c := range raw {
		p[i] = core.Name(c)
	}
	if err := checkWireCanonical(p); err != nil {
		return result{Err: err.Error()}
	}
	e, err := s.world.Resolve(s.export, p)
	if err != nil {
		return result{Err: err.Error()}
	}
	return result{ID: uint64(e.ID), Kind: uint8(e.Kind)}
}

// Bump advances the server's binding revision. Coherent client caches
// purge their entries at the next round-trip after a bump, bounding cache
// staleness to one request. Call it whenever the exported naming graph
// changes, or let WatchExport do so automatically.
func (s *Server) Bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rev++
}

// Revision returns the current binding revision.
func (s *Server) Revision() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rev
}

// SetRoutes installs the routing table this server hands to clients that
// ask (cluster members all carry the same table, so any member can
// bootstrap a cluster client).
func (s *Server) SetRoutes(routes *RouteInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.routes = routes.Clone()
}

// WatchExport wraps every directory reachable from root so that any
// binding change bumps the server revision, and returns how many
// directories are now watched. Directories created later are not covered
// until WatchExport is called again.
func (s *Server) WatchExport(root core.Entity) int {
	return s.world.WatchReachable(root, func(core.Name, core.Entity) {
		s.Bump()
	})
}

// Served returns the number of wire requests handled so far (a batch
// counts once — that is the point of batching).
func (s *Server) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Resolved returns the number of names resolved so far (every element of a
// batch counts).
func (s *Server) Resolved() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resolved
}

// Close stops the listener, closes active connections, and waits for
// connection handlers started by Serve to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.listener
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
}

// RemoteError is a resolution failure reported by the server.
type RemoteError struct {
	// Msg is the server-side error message.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "remote: " + e.Msg }

// Client is a connection to a name server with an optional resolution
// cache. Client is safe for concurrent use; requests are serialized on the
// connection by the wire token, while the cache and counters live under
// their own short-section mutex — so Stats and cache bookkeeping never
// wait behind a slow or hung server (lockheld: no mutex is held across
// wire I/O).
type Client struct {
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	timeout time.Duration // immutable after the options run

	// wire is a capacity-1 token serializing round-trips on the shared
	// gob stream. Responses are applied (noteRevision, cache fills) before
	// the token is released, so they land in response order: a stale
	// entity can never be cached after a newer revision purged it.
	wire chan struct{}

	mu       sync.Mutex // guards the fields below; never held across I/O
	cache    *lru.Cache[string, core.Entity]
	coherent bool
	rev      uint64
	hits     int
	misses   int
	purges   int
}

// ClientOption configures a Client.
type ClientOption interface {
	apply(*Client)
}

type cacheOption int

func (o cacheOption) apply(c *Client) {
	c.cache = lru.New[string, core.Entity](int(o))
}

// WithCache enables a client-side LRU resolution cache of at most n
// entries. The cache is never invalidated; it models the
// (coherence-agnostic) name caches common in directory services.
func WithCache(n int) ClientOption {
	return cacheOption(n)
}

type coherentCacheOption int

func (o coherentCacheOption) apply(c *Client) {
	c.cache = lru.New[string, core.Entity](int(o))
	c.coherent = true
}

// WithCoherentCache enables a revision-tracked LRU cache of at most n
// entries: every response carries the server's binding revision, and when
// it advances the whole cache is purged before the new entry is stored.
// Cache staleness is thus bounded by one round-trip after a server-side
// change (pair with Server.WatchExport for automatic bumping).
func WithCoherentCache(n int) ClientOption {
	return coherentCacheOption(n)
}

type timeoutOption time.Duration

func (o timeoutOption) apply(c *Client) { c.timeout = time.Duration(o) }

// WithTimeout bounds every round-trip: the connection deadline is set d
// into the future before each request and cleared after the response. A
// request against a hung server then fails with a timeout instead of
// blocking forever; the timeout is a transport error, so the connection
// must be discarded afterwards (the gob stream is mid-message).
func WithTimeout(d time.Duration) ClientOption {
	return timeoutOption(d)
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn, opts ...ClientOption) *Client {
	c := &Client{
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
		wire: make(chan struct{}, 1),
	}
	for _, o := range opts {
		o.apply(c)
	}
	return c
}

// defaultDialTimeout bounds Dial's connection attempt. A raw net.Dial is
// unbounded (conndeadline); callers wanting a different bound use
// DialTimeout.
const defaultDialTimeout = 10 * time.Second

// serveWriteTimeout bounds each response write so a stalled peer cannot
// pin a server goroutine forever.
const serveWriteTimeout = time.Minute

// Dial connects to a server listening at addr. The connection attempt is
// bounded by a default timeout.
func Dial(network, addr string, opts ...ClientOption) (*Client, error) {
	return DialTimeout(network, addr, defaultDialTimeout, opts...)
}

// DialTimeout is Dial with a bound on the connection attempt itself.
func DialTimeout(network, addr string, timeout time.Duration, opts ...ClientOption) (*Client, error) {
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial name server: %w", err)
	}
	return NewClient(conn, opts...), nil
}

// beginWire acquires the round-trip token; endWire releases it. Apply a
// response's revision and cache fills before endWire, so applications
// happen in response order.
func (c *Client) beginWire() { c.wire <- struct{}{} }
func (c *Client) endWire()   { <-c.wire }

// roundTrip sends one request and decodes the response, under the client's
// per-request deadline if one is set. Callers hold the wire token.
func (c *Client) roundTrip(req request, what string) (response, error) {
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return response{}, fmt.Errorf("deadline %s: %w", what, err)
		}
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	if err := c.enc.Encode(req); err != nil {
		return response{}, fmt.Errorf("send %s: %w", what, err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return response{}, fmt.Errorf("%s: server closed: %w", what, err)
		}
		return response{}, fmt.Errorf("recv %s: %w", what, err)
	}
	return resp, nil
}

// noteRevision applies the coherent-cache purge rule for a response
// revision. Callers hold c.mu.
func (c *Client) noteRevision(rev uint64) {
	if !c.coherent || rev == c.rev {
		return
	}
	// The exported graph changed since our entries were fetched:
	// purge before trusting anything new.
	if c.cache.Len() > 0 {
		c.cache.Clear()
		c.purges++
	}
	c.rev = rev
}

// Resolve resolves the compound name at the server (or the cache). Names
// that are not wire-canonical fail client-side with ErrNotCanonical
// before anything crosses the wire.
func (c *Client) Resolve(p core.Path) (core.Entity, error) {
	raw, err := CanonicalWirePath(p)
	if err != nil {
		return core.Undefined, err
	}
	key := p.String()
	c.mu.Lock()
	if c.cache != nil {
		if e, ok := c.cache.Get(key); ok {
			c.hits++
			c.mu.Unlock()
			return e, nil
		}
	}
	c.misses++
	c.mu.Unlock()

	req := request{Path: raw}
	c.beginWire()
	resp, err := c.roundTrip(req, fmt.Sprintf("resolve %q", p))
	if err != nil {
		c.endWire()
		return core.Undefined, err
	}
	e := core.Entity{ID: core.EntityID(resp.ID), Kind: core.Kind(resp.Kind)}
	c.mu.Lock()
	c.noteRevision(resp.Rev)
	if resp.Err == "" && c.cache != nil {
		c.cache.Put(key, e)
	}
	c.mu.Unlock()
	c.endWire()
	if resp.Err != "" {
		return core.Undefined, &RemoteError{Msg: resp.Err}
	}
	return e, nil
}

// ResolveRev resolves p at the server, bypassing the client's own cache,
// and returns the binding revision the response carried. Cluster clients
// use it to drive a revision-tracked cache that spans many connections.
func (c *Client) ResolveRev(p core.Path) (core.Entity, uint64, error) {
	raw, err := CanonicalWirePath(p)
	if err != nil {
		return core.Undefined, 0, err
	}
	req := request{Path: raw}
	c.beginWire()
	defer c.endWire()
	resp, err := c.roundTrip(req, fmt.Sprintf("resolve %q", p))
	if err != nil {
		return core.Undefined, 0, err
	}
	if resp.Err != "" {
		return core.Undefined, resp.Rev, &RemoteError{Msg: resp.Err}
	}
	return core.Entity{ID: core.EntityID(resp.ID), Kind: core.Kind(resp.Kind)}, resp.Rev, nil
}

// ResolveBatchRev resolves every path in one round-trip, bypassing the
// client's own cache, and returns the batch's binding revision. Results
// are in argument order; per-name failures are in the results.
func (c *Client) ResolveBatchRev(paths []core.Path) ([]BatchResult, uint64, error) {
	raws, err := canonicalWirePaths(paths)
	if err != nil {
		return nil, 0, err
	}
	req := request{Paths: raws}
	c.beginWire()
	defer c.endWire()
	resp, err := c.roundTrip(req, fmt.Sprintf("resolve batch of %d", len(paths)))
	if err != nil {
		return nil, 0, err
	}
	if len(resp.Results) != len(paths) {
		return nil, 0, fmt.Errorf("resolve batch: got %d results for %d paths", len(resp.Results), len(paths))
	}
	out := make([]BatchResult, len(paths))
	for k, res := range resp.Results {
		if res.Err != "" {
			out[k] = BatchResult{Entity: core.Undefined, Err: &RemoteError{Msg: res.Err}}
			continue
		}
		out[k] = BatchResult{Entity: core.Entity{ID: core.EntityID(res.ID), Kind: core.Kind(res.Kind)}}
	}
	return out, resp.Rev, nil
}

// BatchResult is one outcome of a batched resolution.
type BatchResult struct {
	// Entity is the resolved entity (Undefined on failure).
	Entity core.Entity
	// Err is the per-name failure (*RemoteError), nil on success.
	Err error
}

// ResolveBatch resolves every path in one round-trip (cache hits are
// answered locally; duplicates cross the wire once). Results are in
// argument order. The returned error reports a transport failure; per-name
// resolution failures are in the results.
func (c *Client) ResolveBatch(paths []core.Path) ([]BatchResult, error) {
	out := make([]BatchResult, len(paths))
	if len(paths) == 0 {
		return out, nil
	}

	// Answer what we can from the cache; collect the rest, deduplicated.
	// Non-canonical names fail in their result slot before touching the
	// cache or the wire — a bad name must not become a cache key.
	need := make(map[string][]int)
	var order []string
	c.mu.Lock()
	for i, p := range paths {
		if err := checkWireCanonical(p); err != nil {
			out[i] = BatchResult{Entity: core.Undefined, Err: err}
			continue
		}
		key := p.String()
		if c.cache != nil {
			if e, ok := c.cache.Get(key); ok {
				c.hits++
				out[i] = BatchResult{Entity: e}
				continue
			}
		}
		c.misses++
		if _, seen := need[key]; !seen {
			order = append(order, key)
		}
		need[key] = append(need[key], i)
	}
	c.mu.Unlock()
	if len(order) == 0 {
		return out, nil
	}

	req := request{Paths: make([][]string, len(order))}
	for k, key := range order {
		// Already validated above; the error cannot recur.
		raw, _ := CanonicalWirePath(paths[need[key][0]])
		req.Paths[k] = raw
	}
	c.beginWire()
	resp, err := c.roundTrip(req, fmt.Sprintf("resolve batch of %d", len(order)))
	if err != nil {
		c.endWire()
		return nil, err
	}
	if len(resp.Results) != len(order) {
		c.endWire()
		return nil, fmt.Errorf("resolve batch: got %d results for %d paths", len(resp.Results), len(order))
	}
	c.mu.Lock()
	c.noteRevision(resp.Rev)
	for k, res := range resp.Results {
		var br BatchResult
		if res.Err != "" {
			br = BatchResult{Entity: core.Undefined, Err: &RemoteError{Msg: res.Err}}
		} else {
			br = BatchResult{Entity: core.Entity{ID: core.EntityID(res.ID), Kind: core.Kind(res.Kind)}}
			if c.cache != nil {
				c.cache.Put(order[k], br.Entity)
			}
		}
		for _, i := range need[order[k]] {
			out[i] = br
		}
	}
	c.mu.Unlock()
	c.endWire()
	return out, nil
}

// Routes fetches the routing table of a sharded deployment from the
// server. Servers outside a cluster answer with a RemoteError.
func (c *Client) Routes() (*RouteInfo, error) {
	c.beginWire()
	defer c.endWire()
	resp, err := c.roundTrip(request{Routes: true}, "routes")
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, &RemoteError{Msg: resp.Err}
	}
	if resp.Routes == nil {
		return nil, &RemoteError{Msg: "empty routing table"}
	}
	return resp.Routes, nil
}

// Stats returns cache hits and misses so far.
func (c *Client) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purges returns how many times the coherent cache has been invalidated.
func (c *Client) Purges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.purges
}

// Close closes the connection.
func (c *Client) Close() error {
	return c.conn.Close()
}
