package nameserver

import (
	"bufio"
	"encoding/gob"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"namecoherence/internal/core"
)

// Clone returns an independent copy.
func (r *RouteInfo) Clone() *RouteInfo {
	c := &RouteInfo{
		Prefixes: make(map[string]int, len(r.Prefixes)),
		Default:  r.Default,
		Addrs:    append([]string(nil), r.Addrs...),
	}
	for p, s := range r.Prefixes {
		c.Prefixes[p] = s
	}
	if r.Replicas != nil {
		c.Replicas = make([][]string, len(r.Replicas))
		for i, addrs := range r.Replicas {
			c.Replicas[i] = append([]string(nil), addrs...)
		}
	}
	return c
}

// ReplicaAddrs returns every address serving the given shard: the replica
// list when the deployment is replicated, else just the primary address.
func (r *RouteInfo) ReplicaAddrs(shard int) []string {
	if shard < len(r.Replicas) && len(r.Replicas[shard]) > 0 {
		return append([]string(nil), r.Replicas[shard]...)
	}
	return []string{r.Addrs[shard]}
}

// ShardFor returns the shard index serving the given path.
func (r *RouteInfo) ShardFor(p core.Path) int {
	if len(p) > 0 {
		if s, ok := r.Prefixes[string(p[0])]; ok {
			return s
		}
	}
	return r.Default
}

// serveWriteTimeout bounds each response write so a stalled peer cannot
// pin a server goroutine forever.
const serveWriteTimeout = time.Minute

// Server resolves names in an exported context on behalf of remote
// clients. Each connection is served by a leader/followers pool of
// resolver goroutines — whoever holds the decode token reads the next
// request, hands the token on, and resolves what it read — so one
// connection can carry many requests in flight; responses are written as
// resolutions complete, each tagged with the ID of the request it
// answers.
type Server struct {
	world    *core.World
	export   core.Context
	workers  int   // per-connection resolver pool size; immutable after NewServer
	readonly bool  // immutable after NewServer; mutations are refused
	codec    Codec // negotiation policy (see WithServerCodec); immutable after NewServer

	// wmu serializes every binding mutation applied through this server
	// (the wire write path and Stable). It is never held across wire I/O;
	// replies are written after it is released. The snapshot keeper runs
	// its snap closure under the same lock (via Stable), so a snapshot can
	// never observe a half-applied mutation — the rev/snap pair it commits
	// is torn-proof by construction.
	wmu sync.Mutex

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	subs     map[*connState]struct{} // connections subscribed for push invalidation
	closed   bool
	served   int
	resolved int
	rev      uint64
	routes   *RouteInfo
	// onMutation, when set, is called under wmu after each locally
	// originated mutation commits — in commit order, which is what a
	// primary-per-shard replicator needs to keep backups convergent.
	onMutation func(AppliedMutation)
	// exportRoot is the watched export root (set by WatchExport); watching
	// reports whether the export is under revision watch at all.
	exportRoot core.Entity
	watching   bool
	wg         sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption interface {
	apply(*Server)
}

type workersOption int

func (o workersOption) apply(s *Server) {
	if int(o) > 0 {
		s.workers = int(o)
	}
}

// WithWorkers bounds how many requests one connection resolves
// concurrently (default: GOMAXPROCS). Decoding stalls once every worker
// is mid-resolution, so a single connection cannot occupy more than n
// resolver goroutines no matter how deep the client pipelines.
func WithWorkers(n int) ServerOption {
	return workersOption(n)
}

type readonlyOption struct{}

func (readonlyOption) apply(s *Server) { s.readonly = true }

type serverCodecOption Codec

func (o serverCodecOption) apply(s *Server) { s.codec = Codec(o) }

// WithServerCodec sets the codec policy for negotiating clients. The
// default, CodecBinary, accepts a client's binary offer; CodecGob makes
// the server answer every offer with the gob fallback — the rollback
// lever while the binary codec is proving itself. Legacy clients that
// never offer (raw gob from the first byte) are served as gob under
// either policy.
func WithServerCodec(codec Codec) ServerOption {
	return serverCodecOption(codec)
}

// WithReadOnly refuses every wire mutation with a clean error while
// leaving resolution untouched. Useful for serving a frozen snapshot or
// fencing a shard during maintenance.
func WithReadOnly() ServerOption {
	return readonlyOption{}
}

// NewServer returns a server exporting the given context of world.
func NewServer(w *core.World, export core.Context, opts ...ServerOption) *Server {
	s := &Server{
		world:   w,
		export:  export,
		workers: runtime.GOMAXPROCS(0),
		conns:   make(map[net.Conn]struct{}),
		subs:    make(map[*connState]struct{}),
	}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// Serve accepts connections on ln until Close is called, serving each
// connection on its own goroutine. It returns after the listener fails
// (normally: because Close closed it).
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// connState bundles the wire state one connection's worker pool shares.
// The decoder is guarded by dtoken and the encoder by wtoken — capacity-1
// token channels rather than mutexes, because encoding to the peer is
// wire I/O and no sync.Mutex may be held across wire I/O (lockheld).
type connState struct {
	conn      net.Conn
	codec     Codec         // settled by negotiation; immutable afterwards
	br        *bufio.Reader // guarded by dtoken
	dec       *gob.Decoder  // guarded by dtoken; nil unless the codec is gob
	bw        *bufio.Writer // guarded by wtoken
	enc       *gob.Encoder  // guarded by wtoken; nil unless the codec is gob
	dtoken    chan struct{} // capacity 1; held by the worker currently decoding
	wtoken    chan struct{} // capacity 1; held while encoding and flushing
	wq        atomic.Int32  // declared write intents; >0 after our encode elides our flush
	wdeadline time.Time     // armed write deadline; guarded by wtoken
	wbuf      []byte        // binary encode scratch; guarded by wtoken
	deadOnce  sync.Once
	// invalC carries revisions to this connection's pusher goroutine.
	// Capacity 1 with drop-and-replace offers: consecutive bumps coalesce
	// into one frame carrying the newest revision, so a write burst costs a
	// slow subscriber at most one queued frame (the cache purge rule only
	// cares about the latest revision anyway). Closed by ServeConn after
	// the connection leaves the subscriber set.
	invalC chan uint64
}

// offer queues rev for push without ever blocking: if a frame is already
// queued it is superseded — the newer revision strictly dominates it.
// Called with Server.mu held (channel ops are not wire I/O).
func (st *connState) offer(rev uint64) {
	for {
		select {
		case st.invalC <- rev:
			return
		default:
		}
		select {
		case <-st.invalC: // drop the superseded frame
		default:
		}
	}
}

// die marks the stream unusable: the conn closes, failing any in-progress
// read or write, and each worker's next decode errors out — the decode
// token keeps circulating through the failing decodes, so the whole pool
// drains.
func (st *connState) die() {
	st.deadOnce.Do(func() {
		_ = st.conn.Close()
	})
}

// ServeConn serves one connection until EOF or error, then closes it. It
// may be called directly (e.g. with one end of a net.Pipe).
//
// Requests are decoded in arrival order but resolved concurrently by up
// to s.workers goroutines, so responses can be written out of request
// order; each echoes its request's ID so the client can pair them up.
func (s *Server) ServeConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	codec, err := negotiateServer(conn, br, s.codec)
	if err != nil {
		// The peer vanished before its first byte, or died mid-handshake.
		return
	}
	st := &connState{
		conn:   conn,
		codec:  codec,
		br:     br,
		bw:     bufio.NewWriter(conn),
		dtoken: make(chan struct{}, 1),
		wtoken: make(chan struct{}, 1),
	}
	if codec == CodecGob {
		st.dec = gob.NewDecoder(br)
		st.enc = gob.NewEncoder(st.bw)
	}
	st.invalC = make(chan uint64, 1)
	var pushWG sync.WaitGroup
	pushWG.Add(1)
	go func() {
		defer pushWG.Done()
		s.pushInvalidations(st)
	}()
	var wg sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveRequests(st)
		}()
	}
	wg.Wait()
	// The workers have drained: the conn is dead. Leave the subscriber set
	// first (under mu, so no Bump can offer concurrently), then close the
	// channel to stop the pusher, then join it.
	s.mu.Lock()
	delete(s.subs, st)
	s.mu.Unlock()
	close(st.invalC)
	pushWG.Wait()
}

// negotiateServer settles a fresh connection's codec by sniffing its
// first byte. The binary magic can never begin a gob stream (a gob
// message opens with a small length byte or a negated byte count — see
// the package comment in codec.go), so the sniff is unambiguous: magic
// means a negotiating client, answered with this server's policy;
// anything else is a legacy client, served as raw gob with nothing
// consumed and nothing written. The wait for the first byte is the
// connection's ordinary idle state — Close unblocks it by closing the
// conn, exactly as it unblocks a worker's idle decode.
func negotiateServer(conn net.Conn, br *bufio.Reader, policy Codec) (Codec, error) {
	first, err := br.Peek(1)
	if err != nil {
		return 0, err
	}
	if first[0] != binaryMagic {
		return CodecGob, nil
	}
	_, _ = br.Discard(1)
	chosen := policy
	reply := [1]byte{binaryMagic}
	if chosen != CodecBinary {
		chosen = CodecGob
		reply[0] = replyGob
	}
	_ = conn.SetWriteDeadline(time.Now().Add(serveWriteTimeout))
	if _, err := conn.Write(reply[:]); err != nil {
		return 0, err
	}
	return chosen, nil
}

// pushInvalidations is a connection's push goroutine: it forwards every
// revision offered on invalC to the peer as an unsolicited Invalidation
// frame. Frames share the connection's write token with ordinary
// responses, so a push can never tear a response mid-message. The
// goroutine runs for every connection but stays parked until the peer
// subscribes (only subscribers receive offers); it exits when ServeConn
// closes invalC — or early, if the peer dies mid-push.
func (s *Server) pushInvalidations(st *connState) {
	for rev := range st.invalC {
		resp := response{Rev: rev, Invalidation: true}
		s.respond(st, &resp)
	}
}

// workerScratch is one resolver goroutine's reusable state: the frame
// and decode buffers a request is parsed into, and the path/results
// buffers resolution fills. Workers never share a scratch, so with the
// binary codec steady-state serving touches the allocator not at all —
// every buffer reaches its high-water mark and is reused, and the
// intern table absorbs the connection's recurring names.
type workerScratch struct {
	req     request
	path    core.Path
	results []result
	// Binary-codec decode state: the raw frame (filled under dtoken,
	// parsed after release, so workers parse in parallel), the backing
	// arrays for the decoded request's Path/Paths, and the intern table
	// for its strings.
	frame    []byte
	reqPath  []string
	reqPaths [][]string
	names    strIntern
}

// serveRequests is one worker in a connection's leader/followers pool:
// whoever holds the decode token reads the next request, releases the
// token so another worker can read the one after, then resolves and
// writes the response itself. Decoding and encoding each stay
// single-streamed while up to s.workers resolutions run concurrently —
// and a serial client's request runs decode→resolve→encode on one
// goroutine with no handoffs at all.
//
//namingvet:allocfree
func (s *Server) serveRequests(st *connState) {
	var sc workerScratch
	// Declared outside the loop: resp's address reaches respond, so an
	// in-loop declaration heap-allocates every request. Every iteration
	// overwrites it wholesale before use.
	var resp response
	for {
		st.dtoken <- struct{}{}
		var err error
		if st.codec == CodecBinary {
			// Read the raw frame under the token, parse it after release:
			// the stream stays single-streamed while workers parse (and
			// resolve) in parallel. An idle read blocks until the peer
			// speaks; Close unblocks it by closing the conn.
			var body []byte
			body, err = readFrame(st.br, &sc.frame)
			<-st.dtoken
			if err == nil {
				err = parseRequest(body, &sc.req, &sc)
			}
		} else {
			// Zero the scratch before reuse: gob merges into an existing
			// value, so a field the next message omits would leak the
			// previous one.
			sc.req = request{}
			// An idle read blocks until the peer speaks; Close unblocks it by
			// closing the conn (conndeadline's idle-loop exemption knows this).
			//namingvet:allocfree-exempt -- legacy gob codec, selectable for one release
			err = st.dec.Decode(&sc.req)
			<-st.dtoken
		}
		if err != nil {
			st.die() // EOF, broken peer, or torn frame; drain the rest of the pool
			return
		}
		if sc.req.Subscribe {
			// Subscription needs the connection identity, so it is handled
			// here rather than in handle. From the moment the connection
			// joins the set, every bump is offered to it; the ack carries
			// the current revision so the client starts from a known point.
			s.mu.Lock()
			s.subs[st] = struct{}{}
			resp = response{Rev: s.rev}
			s.mu.Unlock()
		} else {
			resp = s.handle(&sc)
		}
		resp.ID = sc.req.ID
		names := len(sc.req.Paths)
		if sc.req.Paths == nil && !sc.req.Routes {
			names = 1
		}
		s.mu.Lock()
		s.served++
		s.resolved += names
		s.mu.Unlock()
		s.respond(st, &resp)
	}
}

// respond writes one response under the connection's write token. The
// flush is elided when another worker has already declared a write
// intent — workers never abandon a declared intent, so that worker's own
// flush is guaranteed to carry our bytes and a burst of pipelined
// responses rides one syscall.
func (s *Server) respond(st *connState, resp *response) {
	st.wq.Add(1)
	st.wtoken <- struct{}{}
	now := time.Now()
	if st.wdeadline.Sub(now) < serveWriteTimeout/2 {
		// The write bound is a liveness backstop, not a precise timer, so
		// re-arm it lazily at half horizon and let it ride across writes.
		st.wdeadline = now.Add(serveWriteTimeout)
		_ = st.conn.SetWriteDeadline(st.wdeadline)
	}
	var err error
	if st.codec == CodecBinary {
		// Append-encode into the token-guarded scratch: the response's
		// bytes are built and written with zero heap traffic.
		st.wbuf = appendResponse(st.wbuf[:0], resp)
		err = writeFrame(st.bw, st.wbuf)
	} else {
		//namingvet:allocfree-exempt -- legacy gob codec, selectable for one release
		err = st.enc.Encode(resp)
	}
	if rem := st.wq.Add(-1); err == nil && rem == 0 {
		// Flush at the message boundary: gob alone issues several small
		// writes per message, each a syscall on a real conn.
		err = st.bw.Flush()
	}
	<-st.wtoken
	if err != nil {
		// The stream died mid-message; kill the conn so the decoders stop
		// instead of queueing answers nobody will read.
		st.die()
	}
}

// handle serves one wire request from sc.req, resolving into the worker's
// scratch buffers.
//
// The resolve cases return a revision consistent with the bindings they
// read, re-resolving until the revision settles. The revision is sampled
// after resolution — sampling before would let a concurrent Bump pair a
// fresh binding with a stale revision, deferring the coherent-cache purge
// by one round-trip and breaking WithCoherentCache's staleness bound. If
// the revision moved while resolving, the resolution raced a binding
// change and is retried against the newer revision; if it never settles,
// the pre-resolution revision is returned, which at worst forces the
// client to purge again next trip (conservative, never stale). The retry
// loop is written out in both cases rather than lifted into a helper
// taking a resolve closure: handle is on serveRequests' allocfree path,
// and the loop is the price of keeping it closure-free.
func (s *Server) handle(sc *workerScratch) response {
	req := &sc.req
	switch {
	case req.Op != opNone:
		return s.handleMutation(req)
	case req.Routes:
		s.mu.Lock()
		routes := s.routes
		s.mu.Unlock()
		if routes == nil {
			return response{Err: "no routing table: server is not a cluster member"}
		}
		//namingvet:allocfree-exempt -- cold: routing bootstrap copies the table
		return response{Routes: routes.Clone()}
	case req.Paths != nil:
		results := sc.results[:0]
		rev := s.Revision()
		for attempt := 0; ; attempt++ {
			results = results[:0]
			for _, raw := range req.Paths {
				results = append(results, s.resolveOne(&sc.path, raw))
			}
			after := s.Revision()
			if after == rev || attempt == 3 {
				break
			}
			rev = after
		}
		sc.results = results
		return response{Rev: rev, Results: results}
	default:
		var res result
		rev := s.Revision()
		for attempt := 0; ; attempt++ {
			res = s.resolveOne(&sc.path, req.Path)
			after := s.Revision()
			if after == rev || attempt == 3 {
				break
			}
			rev = after
		}
		return response{Ent: res.ID, Kind: res.Kind, Rev: rev, Err: res.Err}
	}
}

// resolveOne resolves one wire path in the exported context, rebuilding it
// into the caller's scratch path (amortized: the backing array is reused
// across requests). The path is re-validated here even though well-behaved
// clients canonicalize before sending: the wire trusts no peer's parser
// (§6 — coherence is checked where the name is used, not only where it was
// made).
func (s *Server) resolveOne(scratch *core.Path, raw []string) result {
	p := (*scratch)[:0]
	for _, c := range raw {
		p = append(p, core.Name(c))
	}
	*scratch = p
	if err := checkWireCanonical(p); err != nil {
		return result{Err: err.Error()}
	}
	e, err := s.world.Resolve(s.export, p)
	if err != nil {
		return result{Err: err.Error()}
	}
	return result{ID: uint64(e.ID), Kind: uint8(e.Kind)}
}

// Bump advances the server's binding revision and fans the new revision
// out to subscribed connections. Coherent client caches purge their
// entries at the next round-trip after a bump — or on the pushed frame
// itself when subscribed — bounding cache staleness to one request. Call
// it whenever the exported naming graph changes, or let WatchExport do so
// automatically.
//
//namingvet:revbump
func (s *Server) Bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rev++
	s.notifyLocked(s.rev)
}

// notifyLocked offers rev to every subscribed connection's pusher.
// Callers hold s.mu; offers never block (see connState.offer).
func (s *Server) notifyLocked(rev uint64) {
	for st := range s.subs {
		st.offer(rev)
	}
}

// Revision returns the current binding revision.
func (s *Server) Revision() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rev
}

// SetRevision advances the binding revision to at least rev. Recovery
// uses it to resume a restored shard at the revision its snapshot was
// committed under, and replicated applies use it to adopt the primary's
// revision tag. It never moves the revision backwards: a client that
// already observed a higher revision must not see this server "rewind"
// past it, or the coherent-cache purge rule would admit stale entries as
// current. An advance notifies subscribers exactly like Bump.
//
//namingvet:revbump
func (s *Server) SetRevision(rev uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rev > s.rev {
		s.rev = rev
		s.notifyLocked(s.rev)
	}
}

// Stable runs fn under the lock that serializes binding mutations: no
// wire write can commit while fn runs. The snapshot keeper routes its
// rev-probe/snapshot pair through Stable so the pair is consistent — a
// snapshot can never capture a mutation the probed revision predates.
// fn must not call back into the server's mutation path.
func (s *Server) Stable(fn func()) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	fn()
}

// SetRoutes installs the routing table this server hands to clients that
// ask (cluster members all carry the same table, so any member can
// bootstrap a cluster client).
func (s *Server) SetRoutes(routes *RouteInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.routes = routes.Clone()
}

// WatchExport wraps every directory reachable from root so that any
// binding change bumps the server revision, and returns how many
// directories are now watched. The watch is self-extending: when a
// binding introduces an entity, every directory reachable through it is
// watched too, so directories created (or attached) after watch time
// cannot mutate silently — the hole that once let a bind in a freshly
// made context leave client caches stale.
func (s *Server) WatchExport(root core.Entity) int {
	s.mu.Lock()
	s.exportRoot = root
	s.watching = true
	s.mu.Unlock()
	return s.world.WatchReachable(root, s.exportWatch)
}

// exportWatch is the watch callback installed on every exported
// directory: bump the revision, then extend the watch over whatever the
// change made reachable. The recursion terminates because WatchReachable
// skips already-watched directories.
func (s *Server) exportWatch(_ core.Name, e core.Entity) {
	s.Bump()
	if !e.IsUndefined() {
		s.world.WatchReachable(e, s.exportWatch)
	}
}

// Served returns the number of wire requests handled so far (a batch
// counts once — that is the point of batching).
func (s *Server) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Resolved returns the number of names resolved so far (every element of a
// batch counts).
func (s *Server) Resolved() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resolved
}

// Close stops the listener, closes active connections, and waits for
// connection handlers started by Serve to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.listener
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
}
