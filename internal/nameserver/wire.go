// Wire protocol of the name service: every type that crosses a
// connection is declared (and gob-registered) here, in one place, so the
// protocol surface is auditable at a glance and the round-trip test in
// wire_test.go cannot miss a type.
//
// The protocol is tagged and multiplexed: every request carries a
// client-assigned ID, the server echoes it in the response, and neither
// side assumes responses arrive in request order. N callers can therefore
// share one connection with N requests in flight — the server resolves
// them on a worker pool and writes answers as they complete.

package nameserver

import "encoding/gob"

// Mutation opcodes carried in request.Op. Zero means "not a mutation":
// the request is a resolve, batch, routing fetch, or subscription. The
// non-zero values are exported because the cluster replicator re-issues
// committed mutations to backup replicas using the same opcodes.
const (
	opNone      uint8 = iota
	OpBind            // bind Name in the directory at Path to Target
	OpUnbind          // remove the binding for Name in the directory at Path
	OpMkcontext       // create a directory named Name under the directory at Path
)

// request is one message from client to server. ID tags the request for
// multiplexing; exactly one request form is used per message: a single
// resolve (Path with Op zero), a batched resolve (Paths — one round-trip
// resolves every element), a routing fetch (Routes — cluster clients
// bootstrap the shard map from any member), a subscription (Subscribe —
// the server pushes invalidation frames on every revision advance for the
// rest of the connection), or a mutation (Op non-zero — bind, unbind or
// mkcontext against the exported graph, under the revision discipline).
type request struct {
	// ID is the client-assigned pipelining tag, echoed verbatim in the
	// response so the client can pair answers with in-flight calls.
	// Clients assign IDs monotonically per connection; the server treats
	// them as opaque.
	ID uint64
	// Path is the compound name, one component per element. For a
	// mutation it names the directory being mutated (empty: the export
	// root).
	Path []string
	// Paths, when non-nil, is a batch of compound names.
	Paths [][]string
	// Routes requests the server's routing table.
	Routes bool
	// Subscribe registers this connection for push invalidation: from the
	// acknowledging response on, every revision advance is fanned out to
	// the connection as an unsolicited Invalidation frame.
	Subscribe bool
	// Op is the mutation opcode (opBind, opUnbind, opMkcontext); zero for
	// non-mutating requests.
	Op uint8
	// Name is the binding being created or removed by a mutation.
	Name string
	// Target identifies the entity Name is bound to (opBind only): the
	// entity's ID and kind as previously resolved over this protocol.
	Target     uint64
	TargetKind uint8
	// AtRev, when non-zero, tags a replicated apply: the mutation was
	// already committed by the shard's primary at this revision, and the
	// replica must adopt it (monotonically) rather than mint its own.
	AtRev uint64
	// Twin, for a replicated opMkcontext apply, is the entity ID of the
	// directory the primary created, so the replica can register its own
	// fresh directory in the same replica group — keeping weak coherence
	// measurable across the write path.
	Twin uint64
}

// result is one resolution outcome inside a batched response.
type result struct {
	// ID and Kind identify the resolved entity (0 on failure).
	ID   uint64
	Kind uint8
	// Err carries the failure message, empty on success.
	Err string
}

// response is the server's answer — or, with Invalidation set, a
// server-initiated push frame. Responses may be written out of request
// order; ID says which request each one answers.
type response struct {
	// ID echoes the request's pipelining tag. Push invalidation frames
	// answer no request and carry ID 0, which clients never assign.
	ID uint64
	// Ent and Kind identify the resolved entity (0 on failure). A
	// mutation that creates an entity (mkcontext) reports it here.
	Ent  uint64
	Kind uint8
	// Rev is the server's binding revision at answer time; coherent client
	// caches purge stale entries when it advances. For a batch it covers
	// every element; for a mutation it is the revision the mutation
	// committed at; for an invalidation frame it is the revision pushed.
	Rev uint64
	// Err carries the failure message, empty on success.
	Err string
	// Results answers a batched request, in request order.
	Results []result
	// Routes answers a routing fetch.
	Routes *RouteInfo
	// Invalidation marks a server-initiated push frame: the exported
	// graph changed and caches vouched for below Rev are stale. Sent only
	// on subscribed connections (see request.Subscribe).
	Invalidation bool
}

// RouteInfo describes a sharded deployment of one logical naming graph:
// which shard serves each first-component prefix, and where every shard
// listens. Servers of a cluster all carry the same RouteInfo, so a client
// can bootstrap from any one member.
type RouteInfo struct {
	// Prefixes maps a name's first component to the index of the shard
	// serving that subtree.
	Prefixes map[string]int
	// Default is the shard for names whose first component has no entry
	// (including the root shard of the cluster).
	Default int
	// Addrs lists the shards' primary dial addresses, indexed by shard.
	Addrs []string
	// Replicas, when non-nil, lists every replica address per shard
	// (Replicas[i][0] == Addrs[i]). All replicas of a shard serve replicas
	// of the same subtree, so any of them can answer for the shard — the
	// weak-coherence contract of §3, applied to the servers themselves.
	Replicas [][]string
}

// wireTypes enumerates every type that crosses the wire, keyed by a
// stable name. New wire types must be added here: registration below and
// the round-trip test in wire_test.go both iterate this table.
var wireTypes = map[string]any{
	"request":   request{},
	"result":    result{},
	"response":  response{},
	"RouteInfo": RouteInfo{},
}

func init() {
	// Concrete struct types do not strictly need registration (only
	// interface-valued fields do), but registering pins the wire names so
	// a future rename or interface-typed field cannot silently change the
	// protocol.
	for _, v := range wireTypes {
		gob.Register(v)
	}
}
