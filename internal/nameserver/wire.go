// Wire protocol of the name service: every type that crosses a
// connection is declared (and gob-registered) here, in one place, so the
// protocol surface is auditable at a glance and the round-trip test in
// wire_test.go cannot miss a type.
//
// The protocol is tagged and multiplexed: every request carries a
// client-assigned ID, the server echoes it in the response, and neither
// side assumes responses arrive in request order. N callers can therefore
// share one connection with N requests in flight — the server resolves
// them on a worker pool and writes answers as they complete.

package nameserver

import "encoding/gob"

// request is one message from client to server. ID tags the request for
// multiplexing; exactly one of the three request forms is used per
// message: a single resolve (Path), a batched resolve (Paths — one
// round-trip resolves every element), or a routing fetch (Routes —
// cluster clients bootstrap the shard map from any member).
type request struct {
	// ID is the client-assigned pipelining tag, echoed verbatim in the
	// response so the client can pair answers with in-flight calls.
	// Clients assign IDs monotonically per connection; the server treats
	// them as opaque.
	ID uint64
	// Path is the compound name, one component per element.
	Path []string
	// Paths, when non-nil, is a batch of compound names.
	Paths [][]string
	// Routes requests the server's routing table.
	Routes bool
}

// result is one resolution outcome inside a batched response.
type result struct {
	// ID and Kind identify the resolved entity (0 on failure).
	ID   uint64
	Kind uint8
	// Err carries the failure message, empty on success.
	Err string
}

// response is the server's answer. Responses may be written out of
// request order; ID says which request each one answers.
type response struct {
	// ID echoes the request's pipelining tag.
	ID uint64
	// Ent and Kind identify the resolved entity (0 on failure).
	Ent  uint64
	Kind uint8
	// Rev is the server's binding revision at answer time; coherent client
	// caches purge stale entries when it advances. For a batch it covers
	// every element.
	Rev uint64
	// Err carries the failure message, empty on success.
	Err string
	// Results answers a batched request, in request order.
	Results []result
	// Routes answers a routing fetch.
	Routes *RouteInfo
}

// RouteInfo describes a sharded deployment of one logical naming graph:
// which shard serves each first-component prefix, and where every shard
// listens. Servers of a cluster all carry the same RouteInfo, so a client
// can bootstrap from any one member.
type RouteInfo struct {
	// Prefixes maps a name's first component to the index of the shard
	// serving that subtree.
	Prefixes map[string]int
	// Default is the shard for names whose first component has no entry
	// (including the root shard of the cluster).
	Default int
	// Addrs lists the shards' primary dial addresses, indexed by shard.
	Addrs []string
	// Replicas, when non-nil, lists every replica address per shard
	// (Replicas[i][0] == Addrs[i]). All replicas of a shard serve replicas
	// of the same subtree, so any of them can answer for the shard — the
	// weak-coherence contract of §3, applied to the servers themselves.
	Replicas [][]string
}

// wireTypes enumerates every type that crosses the wire, keyed by a
// stable name. New wire types must be added here: registration below and
// the round-trip test in wire_test.go both iterate this table.
var wireTypes = map[string]any{
	"request":   request{},
	"result":    result{},
	"response":  response{},
	"RouteInfo": RouteInfo{},
}

func init() {
	// Concrete struct types do not strictly need registration (only
	// interface-valued fields do), but registering pins the wire names so
	// a future rename or interface-typed field cannot silently change the
	// protocol.
	for _, v := range wireTypes {
		gob.Register(v)
	}
}
