package nameserver

import (
	"testing"

	"namecoherence/internal/core"
)

// TestCoherentCacheBoundedStaleness is the contrast to TestCacheStaleness:
// with the revision-tracked cache, a server-side rebinding (auto-bumped
// via WatchExport) is visible after at most one round-trip.
func TestCoherentCacheBoundedStaleness(t *testing.T) {
	w, tr, oldLs := exportedTree(t)
	if _, err := tr.Create(core.ParsePath("etc/motd"), "hi"); err != nil {
		t.Fatal(err)
	}
	s := NewServer(w, tr.RootContext())
	if watched := s.WatchExport(tr.Root); watched < 3 {
		t.Fatalf("watched = %d, want >= 3", watched)
	}
	c := pipeClient(t, s, WithCoherentCache(16))

	p := core.ParsePath("usr/bin/ls")
	got, err := c.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != oldLs {
		t.Fatalf("initial resolve = %v", got)
	}

	// Rebind usr/bin/ls through the (watched) directory context.
	binDir, err := tr.Lookup(core.ParsePath("usr/bin"))
	if err != nil {
		t.Fatal(err)
	}
	binCtx, _ := w.ContextOf(binDir)
	newLs := w.NewObject("new-ls")
	binCtx.Bind("ls", newLs)
	if s.Revision() == 0 {
		t.Fatal("WatchExport did not bump the revision")
	}

	// A cache hit may still be stale…
	got, err = c.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != oldLs {
		t.Fatalf("hit before any round-trip = %v (bounded staleness allows the old value)", got)
	}
	// …but any round-trip (here: a miss on another name) purges the cache.
	if _, err := c.Resolve(core.ParsePath("etc/motd")); err != nil {
		t.Fatal(err)
	}
	if c.Purges() != 1 {
		t.Fatalf("Purges = %d, want 1", c.Purges())
	}
	got, err = c.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != newLs {
		t.Fatalf("post-purge resolve = %v, want %v", got, newLs)
	}
}

func TestCoherentCacheNoChurnBehavesLikeCache(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	s.WatchExport(tr.Root)
	c := pipeClient(t, s, WithCoherentCache(16))

	p := core.ParsePath("usr/bin/ls")
	for i := 0; i < 5; i++ {
		got, err := c.Resolve(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != f {
			t.Fatalf("resolve = %v", got)
		}
	}
	hits, misses := c.Stats()
	if hits != 4 || misses != 1 || c.Purges() != 0 {
		t.Fatalf("stats = (%d,%d,%d), want (4,1,0)", hits, misses, c.Purges())
	}
}

func TestManualBump(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	if s.Revision() != 0 {
		t.Fatal("fresh revision not 0")
	}
	s.Bump()
	s.Bump()
	if s.Revision() != 2 {
		t.Fatalf("Revision = %d", s.Revision())
	}

	c := pipeClient(t, s, WithCoherentCache(4))
	if _, err := c.Resolve(core.ParsePath("usr/bin/ls")); err != nil {
		t.Fatal(err)
	}
	// First response synchronizes the client to revision 2 without a purge
	// (the cache was empty).
	if c.Purges() != 0 {
		t.Fatalf("Purges = %d", c.Purges())
	}
	s.Bump()
	if _, err := c.Resolve(core.ParsePath("usr/bin")); err != nil {
		t.Fatal(err)
	}
	if c.Purges() != 1 {
		t.Fatalf("Purges after bump = %d, want 1", c.Purges())
	}
}

// The plain (non-coherent) cache ignores revisions entirely.
func TestPlainCacheIgnoresRevisions(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s, WithCache(16))

	p := core.ParsePath("usr/bin/ls")
	if _, err := c.Resolve(p); err != nil {
		t.Fatal(err)
	}
	s.Bump()
	got, err := c.Resolve(p) // hit: no revision check possible
	if err != nil {
		t.Fatal(err)
	}
	if got != f || c.Purges() != 0 {
		t.Fatalf("plain cache purged or changed: %v %d", got, c.Purges())
	}
}
