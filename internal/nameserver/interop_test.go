package nameserver

// Cross-version interop tests for the codec negotiation. The rollout
// story the one-byte handshake buys: an old (gob-pinned) client must
// work against a new binary-default server, and a new binary-preferring
// client must work against a server administratively pinned to gob —
// both directions, for reads and for mutations, with the negotiated
// codec observable on the client.

import (
	"testing"
	"time"

	"namecoherence/internal/core"
)

// exerciseClient runs one resolve and one mutation round-trip — the two
// request shapes with distinct wire paths — and verifies both landed.
func exerciseClient(t *testing.T, c *Client, f core.Entity) {
	t.Helper()
	got, err := c.Resolve(core.ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if got != f {
		t.Fatalf("resolve = %v, want %v", got, f)
	}
	rev, err := c.Bind(core.ParsePath("usr/bin"), "twin", f)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	if rev == 0 {
		t.Fatal("bind returned revision 0")
	}
	if got, err := c.Resolve(core.ParsePath("usr/bin/twin")); err != nil || got != f {
		t.Fatalf("resolve of bound name = %v, %v; want %v", got, err, f)
	}
	if _, err := c.Unbind(core.ParsePath("usr/bin"), "twin"); err != nil {
		t.Fatalf("unbind: %v", err)
	}
}

// TestInteropGobClientBinaryServer: an old client (pinned to gob, sends
// no hello) against a new server whose default is binary. The server
// must detect the absent magic byte and fall back to gob transparently.
func TestInteropGobClientBinaryServer(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext()) // binary-default server
	c := pipeClient(t, s, WithCodec(CodecGob))
	if got := c.Codec(); got != CodecGob {
		t.Fatalf("client codec = %v, want gob", got)
	}
	exerciseClient(t, c, f)
}

// TestInteropBinaryClientGobServer: a new client against a server pinned
// to gob (the escape hatch for a mixed fleet). The client's hello must
// be answered with the gob-downgrade byte and the client must fall back.
func TestInteropBinaryClientGobServer(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext(), WithServerCodec(CodecGob))
	c := pipeClient(t, s) // binary-preferring client
	if got := c.Codec(); got != CodecGob {
		t.Fatalf("client codec = %v, want gob after downgrade", got)
	}
	exerciseClient(t, c, f)
}

// TestInteropBinaryBothEnds: the steady state after rollout — both ends
// new, handshake lands on binary.
func TestInteropBinaryBothEnds(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s)
	if got := c.Codec(); got != CodecBinary {
		t.Fatalf("client codec = %v, want binary", got)
	}
	exerciseClient(t, c, f)
}

// TestInteropGobBothEnds: both ends pinned to gob — the pre-rollout
// wire, byte-for-byte (the pinned client sends no hello at all).
func TestInteropGobBothEnds(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext(), WithServerCodec(CodecGob))
	c := pipeClient(t, s, WithCodec(CodecGob))
	if got := c.Codec(); got != CodecGob {
		t.Fatalf("client codec = %v, want gob", got)
	}
	exerciseClient(t, c, f)
}

// TestInteropInvalidationPush verifies the push path (server-initiated
// ID-0 frames) under the binary codec: a subscribed client must see the
// invalidation a mutation triggers.
func TestInteropInvalidationPush(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	c := pipeClient(t, s, WithCoherentCache(8))
	if got := c.Codec(); got != CodecBinary {
		t.Fatalf("client codec = %v, want binary", got)
	}

	seen := make(chan uint64, 4)
	if err := c.Subscribe(func(rev uint64) { seen <- rev }); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if _, err := c.Bind(core.ParsePath("usr/bin"), "pushed", f); err != nil {
		t.Fatalf("bind: %v", err)
	}
	select {
	case <-seen:
	case <-time.After(2 * time.Second):
		t.Fatal("no invalidation push arrived over the binary codec")
	}
}
