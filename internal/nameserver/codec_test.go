package nameserver

// Unit tests for the hand-rolled binary wire codec: agreement with gob
// field-for-field on every registered wire type, byte-stable encoding,
// dirty-scratch overwrite semantics, and hard errors (never panics) on
// malformed input. The fuzz target in fuzz_test.go extends the malformed
// cases to arbitrary bytes.

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
	"unsafe"
)

// binaryRoundTrip encodes v with the binary codec and decodes it back,
// returning the decoded value. Fails the test on any codec error.
func binaryRoundTrip(t *testing.T, v any) any {
	t.Helper()
	switch v := v.(type) {
	case request:
		var out request
		var sc workerScratch
		if err := parseRequest(appendRequest(nil, &v), &out, &sc); err != nil {
			t.Fatalf("parseRequest: %v", err)
		}
		return out
	case result:
		r := frameReader{b: appendResult(nil, &v)}
		var out result
		var errs strIntern
		if err := parseResult(&r, &out, &errs); err != nil {
			t.Fatalf("parseResult: %v", err)
		}
		if r.remaining() != 0 {
			t.Fatalf("parseResult left %d trailing bytes", r.remaining())
		}
		return out
	case response:
		var out response
		var errs strIntern
		if err := parseResponse(appendResponse(nil, &v), &out, &errs); err != nil {
			t.Fatalf("parseResponse: %v", err)
		}
		return out
	case RouteInfo:
		r := frameReader{b: appendRouteInfo(nil, &v)}
		out, err := parseRouteInfo(&r)
		if err != nil {
			t.Fatalf("parseRouteInfo: %v", err)
		}
		if r.remaining() != 0 {
			t.Fatalf("parseRouteInfo left %d trailing bytes", r.remaining())
		}
		return *out
	default:
		t.Fatalf("no binary round-trip case for %T — add one when extending the wire set", v)
		return nil
	}
}

// gobRoundTrip encodes v with gob and decodes it back.
func gobRoundTrip(t *testing.T, v any) any {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	out := reflect.New(reflect.TypeOf(v))
	if err := gob.NewDecoder(&buf).Decode(out.Interface()); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return out.Elem().Interface()
}

// TestBinaryGobAgreement decodes every registered wire type through both
// codecs and requires identical results. Both codecs collapse empty
// collections to nil (gob by zero-omission, the binary codec by decoding
// count zero as nil), so the decoded values — not the inputs — are the
// comparable pair. The registry sweep makes a new wire type without a
// binary case a test failure, mirroring registrycheck's static rule.
func TestBinaryGobAgreement(t *testing.T) {
	values := populated()
	for name := range wireTypes {
		if _, ok := values[name]; !ok {
			t.Fatalf("wire type %q has no populated test value", name)
		}
	}
	for name, v := range values {
		viaGob := gobRoundTrip(t, v)
		viaBinary := binaryRoundTrip(t, v)
		if !reflect.DeepEqual(viaGob, viaBinary) {
			t.Errorf("%s: codecs disagree:\n gob    %#v\n binary %#v", name, viaGob, viaBinary)
		}
	}
}

// TestBinaryByteStable requires encoding to be deterministic — the same
// value always yields the same bytes (RouteInfo's Prefixes map is the
// hazard: its pairs are emitted in sorted key order) — and idempotent
// across a round trip: re-encoding a decoded value reproduces the
// original frame byte-for-byte.
func TestBinaryByteStable(t *testing.T) {
	req := populated()["request"].(request)
	resp := populated()["response"].(response)
	ri := populated()["RouteInfo"].(RouteInfo)

	first := appendRouteInfo(nil, &ri)
	for i := 0; i < 16; i++ {
		if again := appendRouteInfo(nil, &ri); !bytes.Equal(first, again) {
			t.Fatalf("RouteInfo encoding is not deterministic:\n %x\n %x", first, again)
		}
	}

	reqBody := appendRequest(nil, &req)
	decReq := binaryRoundTrip(t, req).(request)
	if again := appendRequest(nil, &decReq); !bytes.Equal(reqBody, again) {
		t.Errorf("request re-encode differs:\n %x\n %x", reqBody, again)
	}
	respBody := appendResponse(nil, &resp)
	decResp := binaryRoundTrip(t, resp).(response)
	if again := appendResponse(nil, &decResp); !bytes.Equal(respBody, again) {
		t.Errorf("response re-encode differs:\n %x\n %x", respBody, again)
	}
}

// TestBinaryNilEmptyCollapse pins the codec's zero-omission parity with
// gob: empty-but-non-nil collections encode as count zero and decode as
// nil. The protocol depends on this only in one place — req.Paths != nil
// discriminates a batch — and clients never send an empty non-nil batch.
func TestBinaryNilEmptyCollapse(t *testing.T) {
	in := request{ID: 5, Path: []string{}, Paths: [][]string{}}
	out := binaryRoundTrip(t, in).(request)
	if out.Path != nil || out.Paths != nil {
		t.Errorf("empty collections decoded non-nil: %#v", out)
	}
	if out.ID != 5 {
		t.Errorf("ID = %d, want 5", out.ID)
	}
}

// TestBinaryDirtyScratchOverwrite parses frames into already-used
// destinations — the steady-state shape on both ends, where req and resp
// live in reused scratch — and requires every field of the previous
// message to be overwritten. The binary parsers assign all fields
// unconditionally instead of zeroing first; this holds them to it.
func TestBinaryDirtyScratchOverwrite(t *testing.T) {
	var sc workerScratch
	full := populated()["request"].(request)
	var req request
	if err := parseRequest(appendRequest(nil, &full), &req, &sc); err != nil {
		t.Fatal(err)
	}
	empty := request{ID: 1}
	if err := parseRequest(appendRequest(nil, &empty), &req, &sc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, empty) {
		t.Errorf("stale fields leaked through reused request scratch:\n got  %#v\n want %#v", req, empty)
	}

	// A shrinking batch must not resurrect components from the larger
	// batch that previously occupied the scratch's inner slices.
	big := request{ID: 2, Paths: [][]string{{"a", "b", "c"}, {"d", "e"}, {"f"}}}
	if err := parseRequest(appendRequest(nil, &big), &req, &sc); err != nil {
		t.Fatal(err)
	}
	small := request{ID: 3, Paths: [][]string{{"x"}, {"y", "z"}}}
	if err := parseRequest(appendRequest(nil, &small), &req, &sc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, small) {
		t.Errorf("batch scratch reuse corrupted a smaller batch:\n got  %#v\n want %#v", req, small)
	}

	fullResp := populated()["response"].(response)
	var resp response
	var errs strIntern
	if err := parseResponse(appendResponse(nil, &fullResp), &resp, &errs); err != nil {
		t.Fatal(err)
	}
	emptyResp := response{ID: 9}
	if err := parseResponse(appendResponse(nil, &emptyResp), &resp, &errs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, emptyResp) {
		t.Errorf("stale fields leaked through reused response scratch:\n got  %#v\n want %#v", resp, emptyResp)
	}
}

// TestBinaryErrInterning verifies that repeated sentinel error strings
// decode to the same backing string (one conversion, then map hits): the
// client sees the common failures — not found, not mine — over and over,
// and interning keeps their decode allocation-free.
func TestBinaryErrInterning(t *testing.T) {
	var errs strIntern
	body := appendResponse(nil, &response{ID: 1, Err: "no such name"})
	var a, b response
	if err := parseResponse(body, &a, &errs); err != nil {
		t.Fatal(err)
	}
	if err := parseResponse(body, &b, &errs); err != nil {
		t.Fatal(err)
	}
	if a.Err != "no such name" || b.Err != "no such name" {
		t.Fatalf("Err decoded as %q / %q", a.Err, b.Err)
	}
	// Same backing storage, not merely equal contents.
	if unsafe.StringData(a.Err) != unsafe.StringData(b.Err) {
		t.Error("repeated sentinel error was not interned to one backing string")
	}
}

// TestBinaryMalformed feeds the parsers systematically damaged frames:
// every strict prefix of a valid body (truncation at each byte), a valid
// body with trailing garbage, an out-of-range bool, and a collection
// count larger than the frame. All must return an error; none may panic
// or read past the frame.
func TestBinaryMalformed(t *testing.T) {
	req := populated()["request"].(request)
	resp := populated()["response"].(response)
	reqBody := appendRequest(nil, &req)
	respBody := appendResponse(nil, &resp)

	var sc workerScratch
	var errs strIntern
	for i := 0; i < len(reqBody); i++ {
		var out request
		if err := parseRequest(reqBody[:i], &out, &sc); err == nil {
			t.Fatalf("request truncated to %d/%d bytes parsed without error", i, len(reqBody))
		}
	}
	for i := 0; i < len(respBody); i++ {
		var out response
		if err := parseResponse(respBody[:i], &out, &errs); err == nil {
			t.Fatalf("response truncated to %d/%d bytes parsed without error", i, len(respBody))
		}
	}

	var out request
	trailing := append(append([]byte(nil), reqBody...), 0xFF)
	if err := parseRequest(trailing, &out, &sc); err == nil {
		t.Error("trailing byte after request parsed without error")
	}

	// Bool bytes are strict 0/1: a two is a protocol error, not truthy.
	badBool := appendUvarint(nil, 1) // ID
	badBool = appendUvarint(badBool, 0)
	badBool = appendUvarint(badBool, 0)
	badBool = append(badBool, 2) // Routes
	var out2 request
	if err := parseRequest(badBool, &out2, &sc); err == nil {
		t.Error("out-of-range bool byte parsed without error")
	}

	// A count claiming 2^40 elements in a 12-byte frame must be rejected
	// up front, not attempted.
	bomb := appendUvarint(nil, 1)             // ID
	bomb = appendUvarint(bomb, uint64(1)<<40) // Path count
	var out3 request
	if err := parseRequest(bomb, &out3, &sc); err == nil {
		t.Error("count exceeding the frame parsed without error")
	}
}
