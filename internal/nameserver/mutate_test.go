package nameserver

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"namecoherence/internal/core"
)

// TestSetRevisionMonotonic is the regression for the recovery-time
// revision rewind: SetRevision used to assign unconditionally, so a
// recovery racing live bumps could move the revision backwards past what
// surviving clients had already observed.
func TestSetRevisionMonotonic(t *testing.T) {
	w, tr, _ := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	for i := 0; i < 5; i++ {
		s.Bump()
	}
	s.SetRevision(3) // a stale snapshot's revision arriving late
	if got := s.Revision(); got != 5 {
		t.Fatalf("Revision = %d after SetRevision(3) over 5, want 5 (monotonic)", got)
	}
	s.SetRevision(9)
	if got := s.Revision(); got != 9 {
		t.Fatalf("Revision = %d after SetRevision(9), want 9", got)
	}

	// Interleave recovery-style SetRevision with concurrent Bumps: the
	// final revision must be at least the bump count plus the recovery
	// floor, and must never have rewound below a value already returned.
	var wg sync.WaitGroup
	const bumps = 100
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < bumps; i++ {
			s.Bump()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < bumps; i++ {
			s.SetRevision(9) // the recovered revision, re-asserted
		}
	}()
	wg.Wait()
	if got := s.Revision(); got != 9+bumps {
		t.Fatalf("Revision = %d after %d bumps over 9, want %d (a SetRevision swallowed bumps)",
			got, bumps, 9+bumps)
	}
}

// TestWireMutations drives bind/unbind/mkcontext over the wire and checks
// both the happy paths and the refusals.
func TestWireMutations(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	s.WatchExport(tr.Root)
	c := pipeClient(t, s)

	// Bind the existing file under a second name.
	rev, err := c.Bind(core.ParsePath("usr/bin"), "ls2", f)
	if err != nil {
		t.Fatal(err)
	}
	if rev == 0 {
		t.Fatal("bind committed at revision 0: mutation did not reach a Bump")
	}
	if got, err := c.Resolve(core.ParsePath("usr/bin/ls2")); err != nil || got != f {
		t.Fatalf("resolve after bind = %v, %v", got, err)
	}

	// Mkcontext, then bind inside the fresh directory.
	dir, mkRev, err := c.Mkcontext(core.ParsePath("usr"), "local")
	if err != nil {
		t.Fatal(err)
	}
	if dir.IsUndefined() || mkRev <= rev {
		t.Fatalf("mkcontext = %v at rev %d (previous %d)", dir, mkRev, rev)
	}
	if _, err := c.Bind(core.ParsePath("usr/local"), "ls3", f); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Resolve(core.ParsePath("usr/local/ls3")); err != nil || got != f {
		t.Fatalf("resolve in fresh context = %v, %v", got, err)
	}

	// Unbind and confirm the name is gone.
	if _, err := c.Unbind(core.ParsePath("usr/bin"), "ls2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve(core.ParsePath("usr/bin/ls2")); err == nil {
		t.Fatal("resolve after unbind succeeded")
	}

	// Refusals: each must be a RemoteError and change nothing.
	var re *RemoteError
	if _, err := c.Bind(core.ParsePath("usr/bin"), "ls", f); !errors.As(err, &re) {
		t.Fatalf("bind over existing name: err = %v, want RemoteError", err)
	}
	if _, err := c.Unbind(core.ParsePath("usr/bin"), "nope"); !errors.As(err, &re) {
		t.Fatalf("unbind missing name: err = %v, want RemoteError", err)
	}
	if _, _, err := c.Mkcontext(core.ParsePath("usr"), "bin"); !errors.As(err, &re) {
		t.Fatalf("mkcontext over existing name: err = %v, want RemoteError", err)
	}
	if _, err := c.Bind(core.ParsePath("usr/bin"), "ghost", core.Entity{ID: 99999, Kind: core.KindObject}); !errors.As(err, &re) {
		t.Fatalf("bind unknown target: err = %v, want RemoteError", err)
	}
	if _, err := c.Bind(core.ParsePath("usr/bin"), "a/b", f); !errors.Is(err, ErrNotCanonical) {
		t.Fatalf("bind non-canonical name: err = %v, want ErrNotCanonical", err)
	}
}

// TestReadOnlyServer checks that WithReadOnly refuses mutations cleanly
// while resolution keeps working.
func TestReadOnlyServer(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext(), WithReadOnly())
	s.WatchExport(tr.Root)
	c := pipeClient(t, s)

	var re *RemoteError
	if _, err := c.Bind(core.ParsePath("usr/bin"), "ls2", f); !errors.As(err, &re) ||
		!strings.Contains(err.Error(), "read-only") {
		t.Fatalf("bind on read-only server: err = %v", err)
	}
	if got, err := c.Resolve(core.ParsePath("usr/bin/ls")); err != nil || got != f {
		t.Fatalf("resolve on read-only server = %v, %v", got, err)
	}
}

// TestMkcontextAutoWatch is the regression for the WatchExport hole:
// directories created after watch time were unwatched, so a bind inside a
// freshly made context mutated the graph without a revision bump and
// coherent caches went silently stale.
func TestMkcontextAutoWatch(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	s.WatchExport(tr.Root)
	c := pipeClient(t, s, WithCoherentCache(16))

	dir, _, err := c.Mkcontext(core.ParsePath("usr"), "fresh")
	if err != nil {
		t.Fatal(err)
	}
	ctx, ok := w.ContextOf(dir)
	if !ok {
		t.Fatal("created entity is not a context")
	}
	if _, watched := ctx.(*core.WatchedContext); !watched {
		t.Fatal("freshly made context is not watched: later binds will not bump the revision")
	}

	// Mutate the fresh directory directly through the world — the path a
	// server-local writer takes, where only the watch can bump.
	before := s.Revision()
	ctx.Bind("tool", f)
	if got := s.Revision(); got <= before {
		t.Fatalf("Revision = %d after bind in fresh context, want > %d", got, before)
	}

	// The coherent cache must see the change after one round-trip: prime
	// it, mutate again, and check the next round-trip purges.
	p := core.ParsePath("usr/fresh/tool")
	if got, err := c.Resolve(p); err != nil || got != f {
		t.Fatalf("resolve fresh binding = %v, %v", got, err)
	}
	purges := c.Purges()
	ctx.Unbind("tool")
	if _, err := c.Resolve(core.ParsePath("usr/bin/ls")); err != nil {
		t.Fatal(err)
	}
	if c.Purges() <= purges {
		t.Fatalf("Purges = %d after unbind in fresh context, want > %d (no bump reached the cache)",
			c.Purges(), purges)
	}
	if _, err := c.Resolve(p); err == nil {
		t.Fatal("stale cache served an unbound name")
	}
}

// TestPushInvalidation subscribes a coherent-cache client and checks that
// a write pushes the purge to it without the client issuing any request.
func TestPushInvalidation(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	s.WatchExport(tr.Root)
	reader := pipeClient(t, s, WithCoherentCache(16))
	writer := pipeClient(t, s)

	if err := reader.Subscribe(nil); err != nil {
		t.Fatal(err)
	}
	if err := reader.Subscribe(nil); err == nil {
		t.Fatal("second Subscribe did not error")
	}

	// Prime the reader's cache.
	p := core.ParsePath("usr/bin/ls")
	if got, err := reader.Resolve(p); err != nil || got != f {
		t.Fatalf("prime = %v, %v", got, err)
	}
	if hits, _ := reader.Stats(); hits != 0 {
		t.Fatalf("hits = %d before any repeat", hits)
	}

	// A write through another connection must reach the reader as a push.
	if _, err := writer.Unbind(core.ParsePath("usr/bin"), "ls"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reader.Invalidations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no invalidation frame arrived")
		}
		time.Sleep(time.Millisecond)
	}
	if reader.Purges() == 0 {
		t.Fatal("push frame did not purge the coherent cache")
	}
	// The very next resolve misses (the entry was pushed out) and sees
	// the unbound state — no stale read, no intermediate round-trip.
	if _, err := reader.Resolve(p); err == nil {
		t.Fatal("resolve after pushed unbind still served the old binding")
	}
}

// TestPushInvalidationCallback checks the onInval hook and that writes on
// the subscriber's own connection also invalidate it.
func TestPushInvalidationCallback(t *testing.T) {
	w, tr, f := exportedTree(t)
	s := NewServer(w, tr.RootContext())
	s.WatchExport(tr.Root)
	c := pipeClient(t, s, WithCoherentCache(16))

	got := make(chan uint64, 16)
	if err := c.Subscribe(func(rev uint64) { got <- rev }); err != nil {
		t.Fatal(err)
	}
	rev, err := c.Bind(core.ParsePath("usr/bin"), "ls2", f)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case pushed := <-got:
		if pushed < rev {
			t.Fatalf("pushed revision %d < commit revision %d", pushed, rev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("onInval callback never ran")
	}
}
