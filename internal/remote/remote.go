package remote

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/machine"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/newcastle"
)

// ErrClusterClosed is returned by operations on a closed cluster.
var ErrClusterClosed = errors.New("cluster closed")

// Cluster is a Newcastle system whose machines each export their tree
// through a name server on a TCP loopback listener.
type Cluster struct {
	// System is the underlying Newcastle Connection.
	System *newcastle.System

	mu        sync.Mutex
	servers   map[string]*nameserver.Server
	listeners map[string]net.Listener
	done      map[string]chan struct{}
	closed    bool
}

// NewCluster builds the system and starts one server per machine.
func NewCluster(w *core.World, machineNames ...string) (*Cluster, error) {
	sys, err := newcastle.NewSystem(w, machineNames...)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		System:    sys,
		servers:   make(map[string]*nameserver.Server, len(machineNames)),
		listeners: make(map[string]net.Listener, len(machineNames)),
		done:      make(map[string]chan struct{}, len(machineNames)),
	}
	for _, name := range machineNames {
		m, err := sys.Machine(name)
		if err != nil {
			c.Close()
			return nil, err
		}
		srv := nameserver.NewServer(w, m.Tree.RootContext())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("listen for %q: %w", name, err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.Serve(ln)
		}()
		c.servers[name] = srv
		c.listeners[name] = ln
		c.done[name] = done
	}
	return c, nil
}

// Addr returns the wire address of a machine's name server.
func (c *Cluster) Addr(machineName string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ln, ok := c.listeners[machineName]
	if !ok {
		return "", fmt.Errorf("addr of %q: %w", machineName, newcastle.ErrUnknownMachine)
	}
	return ln.Addr().String(), nil
}

// Server returns a machine's name server (for request counters).
func (c *Cluster) Server(machineName string) (*nameserver.Server, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.servers[machineName]
	if !ok {
		return nil, fmt.Errorf("server of %q: %w", machineName, newcastle.ErrUnknownMachine)
	}
	return s, nil
}

// Close stops every server and waits for their accept loops.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	servers := c.servers
	done := c.done
	c.mu.Unlock()
	for _, s := range servers {
		s.Close()
	}
	for _, d := range done {
		<-d
	}
}

// Spawn creates a wire-resolving process on the named machine.
func (c *Cluster) Spawn(machineName, label string, opts ...nameserver.ClientOption) (*Proc, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClusterClosed
	}
	c.mu.Unlock()
	p, err := c.System.Spawn(machineName, label)
	if err != nil {
		return nil, err
	}
	return &Proc{
		cluster: c,
		process: p,
		opts:    opts,
		clients: make(map[string]*nameserver.Client),
	}, nil
}

// Proc is a process whose cross-machine resolutions go over the wire.
type Proc struct {
	cluster *Cluster
	process *machine.Process
	opts    []nameserver.ClientOption

	mu          sync.Mutex
	clients     map[string]*nameserver.Client
	localCount  int
	remoteCount int
}

// Process returns the underlying process (for local-only operations).
func (p *Proc) Process() *machine.Process { return p.process }

// client returns (dialing if needed) the connection to a machine's server.
// The dial happens outside p.mu; concurrent callers may race to connect,
// and the loser closes its connection and adopts the winner's.
func (p *Proc) client(machineName string) (*nameserver.Client, error) {
	p.mu.Lock()
	cl, ok := p.clients[machineName]
	p.mu.Unlock()
	if ok {
		return cl, nil
	}
	addr, err := p.cluster.Addr(machineName)
	if err != nil {
		return nil, err
	}
	cl, err = nameserver.Dial("tcp", addr, p.opts...)
	if err != nil {
		return nil, fmt.Errorf("dial %q: %w", machineName, err)
	}
	p.mu.Lock()
	if existing, ok := p.clients[machineName]; ok {
		p.mu.Unlock()
		_ = cl.Close()
		return existing, nil
	}
	p.clients[machineName] = cl
	p.mu.Unlock()
	return cl, nil
}

// Resolve resolves a textual name. Names of the form "/../<machine>/rest"
// are resolved by the target machine's name server over the wire; all
// other names resolve in the local process context.
func (p *Proc) Resolve(name string) (core.Entity, error) {
	abs, path := core.SplitPathString(name)
	if abs && len(path) >= 2 && path[0] == dirtree.ParentName {
		target := string(path[1])
		rest := path[2:]
		if len(rest) == 0 {
			// The machine root itself: known locally to the system.
			m, err := p.cluster.System.Machine(target)
			if err != nil {
				return core.Undefined, err
			}
			return m.Tree.Root, nil
		}
		cl, err := p.client(target)
		if err != nil {
			return core.Undefined, err
		}
		p.mu.Lock()
		p.remoteCount++
		p.mu.Unlock()
		return cl.Resolve(rest)
	}
	p.mu.Lock()
	p.localCount++
	p.mu.Unlock()
	return p.process.Resolve(name)
}

// Stats returns how many resolutions went local vs over the wire.
func (p *Proc) Stats() (local, remote int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.localCount, p.remoteCount
}

// Close closes the process's wire connections. The map is detached under
// the lock; each client Close joins its reader goroutine, which must not
// run under p.mu (a hung peer would wedge Resolve and Stats).
func (p *Proc) Close() {
	p.mu.Lock()
	clients := p.clients
	p.clients = make(map[string]*nameserver.Client)
	p.mu.Unlock()
	for _, cl := range clients {
		_ = cl.Close()
	}
}
