package remote

import (
	"errors"
	"testing"

	"namecoherence/internal/core"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/newcastle"
)

// cluster builds a two-machine wire cluster with files on each machine.
func cluster(t *testing.T) (*core.World, *Cluster) {
	t.Helper()
	w := core.NewWorld()
	c, err := NewCluster(w, "m1", "m2")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, mn := range c.System.MachineNames() {
		m, err := c.System.Machine(mn)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Tree.Create(core.ParsePath("etc/passwd"), "users@"+mn); err != nil {
			t.Fatal(err)
		}
	}
	return w, c
}

func TestLocalResolutionStaysLocal(t *testing.T) {
	_, c := cluster(t)
	p, err := c.Spawn("m1", "p")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	got, err := p.Resolve("/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := c.System.Machine("m1")
	want, _ := m1.Tree.Lookup(core.ParsePath("etc/passwd"))
	if got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
	local, remote := p.Stats()
	if local != 1 || remote != 0 {
		t.Fatalf("stats = (%d,%d)", local, remote)
	}
}

func TestCrossMachineOverWire(t *testing.T) {
	_, c := cluster(t)
	p, err := c.Spawn("m1", "p")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	got, err := p.Resolve("/../m2/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := c.System.Machine("m2")
	want, _ := m2.Tree.Lookup(core.ParsePath("etc/passwd"))
	if got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
	local, remote := p.Stats()
	if local != 0 || remote != 1 {
		t.Fatalf("stats = (%d,%d)", local, remote)
	}
	// The request really hit m2's server.
	srv, err := c.Server("m2")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Served() != 1 {
		t.Fatalf("m2 served = %d", srv.Served())
	}
}

// The wire path and the in-process super-root path agree: the same
// compound name denotes the same entity whichever way it is resolved.
func TestWireAgreesWithDirectResolution(t *testing.T) {
	_, c := cluster(t)
	p, err := c.Spawn("m1", "p")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	name := "/../m2/etc/passwd"
	overWire, err := p.Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := p.Process().Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	if overWire != direct {
		t.Fatalf("wire %v != direct %v", overWire, direct)
	}
}

func TestMachineRootResolution(t *testing.T) {
	_, c := cluster(t)
	p, err := c.Spawn("m1", "p")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got, err := p.Resolve("/../m2")
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := c.System.Machine("m2")
	if got != m2.Tree.Root {
		t.Fatalf("got %v, want m2 root", got)
	}
}

func TestUnknownMachine(t *testing.T) {
	_, c := cluster(t)
	p, err := c.Spawn("m1", "p")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Resolve("/../nope/etc"); !errors.Is(err, newcastle.ErrUnknownMachine) {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.Resolve("/../nope"); !errors.Is(err, newcastle.ErrUnknownMachine) {
		t.Fatalf("root err = %v", err)
	}
}

func TestRemoteMiss(t *testing.T) {
	_, c := cluster(t)
	p, err := c.Spawn("m1", "p")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var re *nameserver.RemoteError
	if _, err := p.Resolve("/../m2/no/such"); !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestClientReuseAndCache(t *testing.T) {
	_, c := cluster(t)
	p, err := c.Spawn("m1", "p", nameserver.WithCache(8))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for i := 0; i < 5; i++ {
		if _, err := p.Resolve("/../m2/etc/passwd"); err != nil {
			t.Fatal(err)
		}
	}
	srv, _ := c.Server("m2")
	if srv.Served() != 1 {
		t.Fatalf("served = %d, want 1 (client cache)", srv.Served())
	}
	_, remote := p.Stats()
	if remote != 5 {
		t.Fatalf("remote count = %d", remote)
	}
}

func TestSpawnErrors(t *testing.T) {
	_, c := cluster(t)
	if _, err := c.Spawn("nope", "p"); !errors.Is(err, newcastle.ErrUnknownMachine) {
		t.Fatalf("err = %v", err)
	}
}

func TestClusterCloseIdempotentAndBlocksSpawn(t *testing.T) {
	w := core.NewWorld()
	c, err := NewCluster(w, "m1")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close()
	if _, err := c.Spawn("m1", "p"); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Addr("nope"); err == nil {
		t.Fatal("unknown addr accepted")
	}
	if _, err := c.Server("nope"); err == nil {
		t.Fatal("unknown server accepted")
	}
}
