// Package remote puts the Newcastle Connection on the wire: every machine
// of the system runs a name server exporting its local tree, and processes
// resolve names that cross a machine boundary ("/../<machine>/…") by
// calling the target machine's server over a real connection.
//
// This is the deployment shape the paper assumes — "resolving a name bound
// on another machine involves the other machine" — and it makes the cost
// of incoherence measurable: local names resolve in-process, coherent
// super-root names pay a network round-trip (amortizable with the client
// cache).
package remote
