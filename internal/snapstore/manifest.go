package snapstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"namecoherence/internal/cas"
)

// manifestName is the manifest file inside a Store's data directory.
const manifestName = "MANIFEST.json"

// ManifestEntry records one committed snapshot: at revision Rev, shard
// Shard's naming graph was the subtree named by Root. The history is
// append-only; the last entry per shard is the recovery point.
type ManifestEntry struct {
	Shard int    `json:"shard"`
	Rev   uint64 `json:"rev"`
	Root  string `json:"root"`
}

// RootHash parses the entry's root hash.
func (e ManifestEntry) RootHash() (cas.Hash, error) {
	return cas.ParseHash(e.Root)
}

// manifest is the on-disk manifest document. JSON, not the canonical
// encoder: it is a tiny mutable index meant to be operator-inspectable,
// not a content-addressed context blob.
type manifest struct {
	Version int             `json:"version"`
	History []ManifestEntry `json:"history"`
}

// Commit appends (shard, rev, root) to the revision history and, for
// durable stores, rewrites the manifest atomically (temp + fsync + rename
// + dir fsync): a crash leaves either the old manifest or the new one,
// never a torn file. Committing the shard's current recovery point again
// is a no-op.
func (s *Store) Commit(shard int, rev uint64, root cas.Hash) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if last, ok := s.latestLocked(shard); ok && last.Rev == rev && last.Root == root.String() {
		return nil
	}
	history := append(append([]ManifestEntry(nil), s.man.History...),
		ManifestEntry{Shard: shard, Rev: rev, Root: root.String()})
	next := manifest{Version: 1, History: history}
	if s.dir != "" {
		if err := writeManifest(s.dir, next); err != nil {
			return err
		}
	}
	s.man = next
	return nil
}

// Latest returns the shard's most recent committed snapshot.
func (s *Store) Latest(shard int) (ManifestEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latestLocked(shard)
}

func (s *Store) latestLocked(shard int) (ManifestEntry, bool) {
	for i := len(s.man.History) - 1; i >= 0; i-- {
		if s.man.History[i].Shard == shard {
			return s.man.History[i], true
		}
	}
	return ManifestEntry{}, false
}

// History returns the shard's committed snapshots, oldest first — the
// revision history of its naming graph.
func (s *Store) History(shard int) []ManifestEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ManifestEntry
	for _, e := range s.man.History {
		if e.Shard == shard {
			out = append(out, e)
		}
	}
	return out
}

// readManifest loads dir's manifest; a missing file is an empty history.
func readManifest(dir string) (manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return manifest{Version: 1}, nil
	}
	if err != nil {
		return manifest{}, fmt.Errorf("read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, fmt.Errorf("parse manifest: %w: %w", ErrBadSnapshot, err)
	}
	return m, nil
}

// writeManifest atomically replaces dir's manifest.
func writeManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("encode manifest: %w", err)
	}
	f, err := os.CreateTemp(dir, "manifest-*")
	if err != nil {
		return fmt.Errorf("manifest temp: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		return cleanup(fmt.Errorf("manifest write: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("manifest fsync: %w", err))
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("manifest close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("manifest publish: %w", err)
	}
	if err := syncDirFsync(dir); err != nil {
		return fmt.Errorf("manifest dir fsync: %w", err)
	}
	return nil
}

// syncDirFsync fsyncs a directory so a rename within it is durable.
func syncDirFsync(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
