package snapstore

import (
	"errors"
	"sync"
	"time"

	"namecoherence/internal/cas"
)

// Keeper drives periodic snapshots: every interval it asks each tracked
// shard whether its revision moved and, if so, captures a snapshot and
// commits it to the manifest. Close stops the loop and takes one final
// snapshot of everything that changed, so a graceful shutdown always
// leaves the latest revision recoverable.
type Keeper struct {
	st       *Store
	interval time.Duration

	mu      sync.Mutex
	tracked []*trackedShard
	stop    chan struct{}
	done    chan struct{}
	started bool
	closed  bool
}

// trackedShard is one shard under the keeper's care. rev is a cheap probe
// for "did anything change"; snap captures a consistent snapshot and
// reports the revision it captured — the caller supplies both so snapshot
// consistency is decided by whoever owns the shard's locking.
type trackedShard struct {
	shard   int
	rev     func() uint64
	snap    func() (cas.Hash, uint64, error)
	lastRev uint64
	hasLast bool
}

// NewKeeper returns a keeper committing into st every interval once
// Start is called. A non-positive interval disables the periodic loop —
// Flush and the final snapshot at Close still work.
func NewKeeper(st *Store, interval time.Duration) *Keeper {
	return &Keeper{
		st:       st,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Store returns the snapshot store the keeper commits into.
func (k *Keeper) Store() *Store { return k.st }

// Track registers a shard. rev must be cheap; snap must capture a
// snapshot consistent with the revision it returns (typically by running
// under the same lock that serializes binding changes). If the store's
// manifest already has this shard at the current revision — the restart
// path, where the world was just restored from that very snapshot — the
// keeper starts caught-up and will not rewrite it.
func (k *Keeper) Track(shard int, rev func() uint64, snap func() (cas.Hash, uint64, error)) {
	t := &trackedShard{shard: shard, rev: rev, snap: snap}
	if last, ok := k.st.Latest(shard); ok && last.Rev == rev() {
		t.lastRev, t.hasLast = last.Rev, true
	}
	k.mu.Lock()
	k.tracked = append(k.tracked, t)
	k.mu.Unlock()
}

// Start launches the periodic snapshot loop. Calling it again is a no-op.
func (k *Keeper) Start() {
	k.mu.Lock()
	if k.started || k.closed {
		k.mu.Unlock()
		return
	}
	k.started = true
	k.mu.Unlock()
	if k.interval <= 0 {
		close(k.done)
		return
	}
	go func() {
		defer close(k.done)
		ticker := time.NewTicker(k.interval)
		defer ticker.Stop()
		for {
			select {
			case <-k.stop:
				return
			case <-ticker.C:
				_ = k.Flush() // transient write errors retry next tick
			}
		}
	}()
}

// Flush snapshots and commits every tracked shard whose revision moved
// since its last commit. Errors from individual shards are joined; the
// remaining shards still flush.
func (k *Keeper) Flush() error {
	k.mu.Lock()
	tracked := append([]*trackedShard(nil), k.tracked...)
	k.mu.Unlock()
	var errs []error
	for _, t := range tracked {
		if t.hasLast && t.rev() == t.lastRev {
			continue
		}
		root, rev, err := t.snap()
		if err == nil {
			err = k.st.Commit(t.shard, rev, root)
		}
		if err != nil {
			errs = append(errs, err)
			continue
		}
		t.lastRev, t.hasLast = rev, true
	}
	return errors.Join(errs...)
}

// Close stops the periodic loop, waits for it, and takes a final flush so
// the manifest names the shard's last revision. Safe to call more than
// once; only the first call flushes.
func (k *Keeper) Close() error {
	k.mu.Lock()
	if k.closed {
		started := k.started
		k.mu.Unlock()
		if started {
			<-k.done
		}
		return nil
	}
	k.closed = true
	started := k.started
	k.mu.Unlock()
	if started {
		close(k.stop)
		<-k.done
	}
	return k.Flush()
}
