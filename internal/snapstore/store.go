package snapstore

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"namecoherence/internal/cas"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

// ErrBadSnapshot is wrapped by Restore errors: the blob graph under the
// given root is malformed or incomplete.
var ErrBadSnapshot = errors.New("bad snapshot")

// objectsDir is the blob directory inside a Store's data directory.
const objectsDir = "objects"

// Store is a snapshot repository: a cas.Store holding Merkle node blobs
// plus a revision-history manifest. Safe for concurrent use; concurrent
// Snapshot calls of shared structure dedup against each other through the
// CAS existence check.
type Store struct {
	cs  *cas.Store
	dir string // manifest directory; "" = manifest kept in memory only

	mu  sync.Mutex
	man manifest
}

// New returns a Store over an existing CAS (typically cas.NewMem for
// tests and replica scratch space). Its manifest lives in memory only.
func New(cs *cas.Store) *Store {
	return &Store{cs: cs}
}

// Open opens (creating if needed) a durable Store rooted at dir: blobs in
// dir/objects with write-then-rename + fsync durability, manifest in
// dir/MANIFEST.json written atomically. Temp files abandoned by a crashed
// writer are swept at open.
func Open(dir string) (*Store, error) {
	local, err := cas.OpenLocal(filepath.Join(dir, objectsDir))
	if err != nil {
		return nil, err
	}
	if _, err := local.SweepTemps(); err != nil {
		return nil, fmt.Errorf("sweep crashed writes: %w", err)
	}
	s := &Store{cs: cas.NewStore(local), dir: dir}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	s.man = man
	return s, nil
}

// CAS returns the underlying content-addressed store.
func (s *Store) CAS() *cas.Store { return s.cs }

// Snapshot serializes the subtree rooted at root into canonical Merkle
// blobs and returns the root hash — one hash that names the whole
// subtree. Shared subtrees are stored once; links back to an ancestor are
// encoded as cycle references; identical structure produces identical
// hashes no matter which replica built it.
func (s *Store) Snapshot(w *core.World, root core.Entity) (cas.Hash, error) {
	sn := &snapshotter{
		w:       w,
		cs:      s.cs,
		done:    make(map[core.EntityID]cas.Hash),
		onStack: make(map[core.EntityID]int),
	}
	h, err := sn.encode(root, 0)
	if err != nil {
		return cas.Hash{}, fmt.Errorf("snapshot %v: %w", root, err)
	}
	return h, nil
}

// snapshotter is one Snapshot call's DFS state.
type snapshotter struct {
	w       *core.World
	cs      *cas.Store
	done    map[core.EntityID]cas.Hash // entity → blob hash, post-order
	onStack map[core.EntityID]int      // entity → DFS depth, while open
}

// encode serializes e's subtree (post-order: children's blobs are in the
// store before their parent's — the invariant CatchUp's pruning relies
// on) and returns its hash. depth is e's position on the DFS stack.
func (sn *snapshotter) encode(e core.Entity, depth int) (cas.Hash, error) {
	if h, ok := sn.done[e.ID]; ok {
		return h, nil
	}
	node := &Node{}
	if ctx, ok := sn.w.ContextOf(e); ok {
		node.Kind = KindDir
		node.EntityKind = e.Kind
		sn.onStack[e.ID] = depth
		for _, name := range ctx.Names() {
			child := ctx.Lookup(name)
			if child.IsUndefined() {
				continue
			}
			var ref Ref
			if d, open := sn.onStack[child.ID]; open {
				ref = Ref{IsCycle: true, Cycle: uint32(depth - d)}
			} else {
				h, err := sn.encode(child, depth+1)
				if err != nil {
					return cas.Hash{}, err
				}
				ref = Ref{Hash: h}
			}
			node.Entries = append(node.Entries, Entry{Name: name, Ref: ref})
		}
		delete(sn.onStack, e.ID)
	} else if data, ok := sn.w.State(e).(*dirtree.FileData); ok {
		node.Kind = KindFile
		node.Content = data.Content
		node.Embedded = data.Embedded
	} else {
		node.Kind = KindOpaque
		node.EntityKind = e.Kind
		node.Label = sn.w.Label(e)
	}
	h, err := sn.cs.Put(node.Encode())
	if err != nil {
		return cas.Hash{}, err
	}
	sn.done[e.ID] = h
	return h, nil
}

// Restore materializes the subtree named by root into w and returns it as
// a tree. Hash-shared blobs restore to shared entities, except subtrees
// whose cycle references escape them (a ".."-style link above their own
// root): those are relative names, re-instantiated per occurrence so each
// copy's cycles resolve against its own access path. label names the
// restored root; interior entities are labelled by the binding that
// reaches them first.
func (s *Store) Restore(root cas.Hash, w *core.World, label string) (*dirtree.Tree, error) {
	rs := &restorer{w: w, cs: s.cs, memo: make(map[cas.Hash]core.Entity)}
	e, _, err := rs.restore(root, label, nil)
	if err != nil {
		return nil, fmt.Errorf("restore %s: %w", root, err)
	}
	if _, ok := w.ContextOf(e); !ok {
		return nil, fmt.Errorf("restore %s: root is not a context object: %w", root, ErrBadSnapshot)
	}
	return &dirtree.Tree{W: w, Root: e}, nil
}

// restorer is one Restore call's DFS state.
type restorer struct {
	w    *core.World
	cs   *cas.Store
	memo map[cas.Hash]core.Entity // self-contained subtrees only
}

// restore materializes the blob graph under h. stack holds the entities
// currently being built, bottom (root) first; cycle references index into
// it from the top. It returns the entity and the subtree's escape height:
// how far above itself its deepest cycle reference points (0 = fully
// self-contained). Only self-contained subtrees are memoized — an
// escaping reference is relative to the access path, so each occurrence
// must re-resolve it against its own ancestors.
func (rs *restorer) restore(h cas.Hash, label string, stack []core.Entity) (core.Entity, int, error) {
	if e, ok := rs.memo[h]; ok {
		return e, 0, nil
	}
	data, err := rs.cs.Get(h)
	if err != nil {
		return core.Undefined, 0, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	node, err := DecodeNode(data)
	if err != nil {
		return core.Undefined, 0, fmt.Errorf("%s: %w: %w", h, ErrBadSnapshot, err)
	}
	switch node.Kind {
	case KindDir:
		var e core.Entity
		var ctx *core.BasicContext
		if node.EntityKind == core.KindActivity {
			e = rs.w.NewActivity(label)
			ctx = core.NewContext()
			if err := rs.w.SetState(e, ctx); err != nil {
				return core.Undefined, 0, err
			}
		} else {
			e, ctx = rs.w.NewContextObject(label)
		}
		stack = append(stack, e)
		escape := 0
		for _, entry := range node.Entries {
			if entry.Ref.IsCycle {
				d := int(entry.Ref.Cycle)
				if d >= len(stack) {
					return core.Undefined, 0, fmt.Errorf(
						"%s: cycle ref %d deeper than access path %d: %w",
						h, d, len(stack), ErrBadSnapshot)
				}
				ctx.Bind(entry.Name, stack[len(stack)-1-d])
				if d > escape {
					escape = d
				}
				continue
			}
			child, childEscape, err := rs.restore(entry.Ref.Hash, string(entry.Name), stack)
			if err != nil {
				return core.Undefined, 0, err
			}
			ctx.Bind(entry.Name, child)
			if childEscape-1 > escape {
				escape = childEscape - 1
			}
		}
		if escape == 0 {
			rs.memo[h] = e
		}
		return e, escape, nil
	case KindFile:
		e := rs.w.NewObject(label)
		if err := rs.w.SetState(e, &dirtree.FileData{
			Content:  node.Content,
			Embedded: node.Embedded,
		}); err != nil {
			return core.Undefined, 0, err
		}
		rs.memo[h] = e
		return e, 0, nil
	case KindOpaque:
		var e core.Entity
		if node.EntityKind == core.KindActivity {
			e = rs.w.NewActivity(node.Label)
		} else {
			e = rs.w.NewObject(node.Label)
		}
		rs.memo[h] = e
		return e, 0, nil
	default:
		return core.Undefined, 0, fmt.Errorf("%s: node kind %d: %w", h, node.Kind, ErrBadSnapshot)
	}
}
