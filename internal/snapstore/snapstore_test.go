package snapstore

import (
	"errors"
	"fmt"
	"testing"

	"namecoherence/internal/cas"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

// newMemStore returns a Store over a fresh in-memory CAS.
func newMemStore() *Store {
	return New(cas.NewStore(cas.NewMem()))
}

// buildSample populates tr with a small mixed tree.
func buildSample(t *testing.T, tr *dirtree.Tree) {
	t.Helper()
	mustCreate := func(p string, content string, embedded ...core.Path) {
		t.Helper()
		if _, err := tr.Create(core.ParsePath(p), content, embedded...); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate("etc/hosts", "localhost")
	mustCreate("etc/conf/db", "port=5432", core.ParsePath("var/data"))
	mustCreate("usr/bin/sh", "#!")
	if _, err := tr.MkdirAll(core.ParsePath("var/data")); err != nil {
		t.Fatal(err)
	}
}

// signature flattens a tree to path → descriptor for structural
// comparison. Unlike Walk, it enumerates paths rather than entities:
// restored worlds share hash-identical subtrees as one entity bound at
// several paths, and every such path must still carry the right
// structure. Parent links and entities already on the current access
// path are skipped so cycles terminate.
func signature(t *testing.T, tr *dirtree.Tree) map[string]string {
	t.Helper()
	out := map[string]string{}
	describe := func(e core.Entity) string {
		if data, ok := tr.W.State(e).(*dirtree.FileData); ok {
			var emb string
			for _, ep := range data.Embedded {
				emb += "|" + ep.String()
			}
			return "file:" + data.Content + emb
		}
		if tr.W.IsContextObject(e) {
			return "dir"
		}
		return fmt.Sprintf("opaque:%d:%s", e.Kind, tr.W.Label(e))
	}
	onPath := map[core.EntityID]bool{tr.Root.ID: true}
	var rec func(p core.Path, e core.Entity)
	rec = func(p core.Path, e core.Entity) {
		c, ok := tr.W.ContextOf(e)
		if !ok {
			return
		}
		for _, n := range c.Names() {
			if n == dirtree.ParentName {
				continue
			}
			child := c.Lookup(n)
			if child.IsUndefined() || onPath[child.ID] {
				continue
			}
			cp := p.Append(n)
			out[cp.String()] = describe(child)
			onPath[child.ID] = true
			rec(cp, child)
			delete(onPath, child.ID)
		}
	}
	rec(nil, tr.Root)
	return out
}

func requireSameSignature(t *testing.T, want, got map[string]string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("signature size differs: want %d, got %d\nwant=%v\ngot=%v",
			len(want), len(got), want, got)
	}
	for p, w := range want {
		if got[p] != w {
			t.Fatalf("at %q: want %q, got %q", p, w, got[p])
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	buildSample(t, tr)

	st := newMemStore()
	root, err := st.Snapshot(w, tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	w2 := core.NewWorld()
	tr2, err := st.Restore(root, w2, "root")
	if err != nil {
		t.Fatal(err)
	}
	requireSameSignature(t, signature(t, tr), signature(t, tr2))

	// Restored entities take their labels from the binding that names them.
	e, err := tr2.Lookup(core.ParsePath("etc/hosts"))
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.Label(e); got != "hosts" {
		t.Fatalf("restored label = %q, want %q", got, "hosts")
	}
	if got := w2.Label(tr2.Root); got != "root" {
		t.Fatalf("restored root label = %q, want %q", got, "root")
	}
}

// Two replicas of the same structure hash identically no matter what
// their entities are labelled or in which order bindings were made —
// content addressing makes weak coherence structural.
func TestReplicasProduceSameRootHash(t *testing.T) {
	st := newMemStore()

	build := func(label string, reversed bool) (cas.Hash, error) {
		w := core.NewWorld()
		tr := dirtree.New(w, label)
		names := []string{"alpha", "beta", "gamma"}
		if reversed {
			for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
				names[i], names[j] = names[j], names[i]
			}
		}
		for _, n := range names {
			if _, err := tr.Create(core.ParsePath("dir/"+n), "payload-"+n); err != nil {
				return cas.Hash{}, err
			}
		}
		return st.Snapshot(w, tr.Root)
	}

	h1, err := build("shard0-r0", false)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := build("shard0-r1", true)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("replica root hashes differ: %s vs %s", h1, h2)
	}
	if ratio := st.CAS().Stats().DedupRatio(); ratio <= 1 {
		t.Fatalf("dedup ratio = %v, want > 1 after snapshotting a replica", ratio)
	}
}

// Parent links (".." cycles) survive the round trip: the restored child's
// ".." binding resolves to the restored parent.
func TestParentLinkCycleRoundTrip(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.NewWithParentLinks(w, "root")
	if _, err := tr.MkdirAll(core.ParsePath("a/b")); err != nil {
		t.Fatal(err)
	}

	st := newMemStore()
	root, err := st.Snapshot(w, tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	w2 := core.NewWorld()
	tr2, err := st.Restore(root, w2, "root")
	if err != nil {
		t.Fatal(err)
	}
	a, err := tr2.Lookup(core.ParsePath("a"))
	if err != nil {
		t.Fatal(err)
	}
	up, err := tr2.Lookup(core.ParsePath("a/b/.."))
	if err != nil {
		t.Fatal(err)
	}
	if up != a {
		t.Fatalf("a/b/.. = %v, want the restored a = %v", up, a)
	}
	self, err := tr2.Lookup(core.ParsePath(".."))
	if err != nil {
		t.Fatal(err)
	}
	if self != tr2.Root {
		t.Fatalf("root/.. = %v, want the restored root", self)
	}
}

// Subtrees whose cycle references escape them are relative names: two
// hash-identical children under different parents must each resolve
// their ".." against their own parent, not a shared instance.
func TestEscapingSubtreesReinstantiated(t *testing.T) {
	w := core.NewWorld()
	root, rootCtx := w.NewContextObject("root")
	mkParent := func(name, marker string) core.Entity {
		parent, parentCtx := w.NewContextObject(name)
		rootCtx.Bind(core.Name(name), parent)
		sub, subCtx := w.NewContextObject("sub")
		parentCtx.Bind("sub", sub)
		subCtx.Bind(dirtree.ParentName, parent)
		f := w.NewObject("f")
		if err := w.SetState(f, &dirtree.FileData{Content: "shared"}); err != nil {
			t.Fatal(err)
		}
		subCtx.Bind("f", f)
		m := w.NewObject("m")
		if err := w.SetState(m, &dirtree.FileData{Content: marker}); err != nil {
			t.Fatal(err)
		}
		parentCtx.Bind("marker", m)
		return parent
	}
	mkParent("a", "A")
	mkParent("b", "B")

	st := newMemStore()
	rootHash, err := st.Snapshot(w, root)
	if err != nil {
		t.Fatal(err)
	}

	w2 := core.NewWorld()
	tr2, err := st.Restore(rootHash, w2, "root")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := tr2.Lookup(core.ParsePath("a"))
	b, _ := tr2.Lookup(core.ParsePath("b"))
	if a == b {
		t.Fatal("distinct parents restored as one entity")
	}
	aUp, err := tr2.Lookup(core.ParsePath("a/sub/.."))
	if err != nil {
		t.Fatal(err)
	}
	bUp, err := tr2.Lookup(core.ParsePath("b/sub/.."))
	if err != nil {
		t.Fatal(err)
	}
	if aUp != a || bUp != b {
		t.Fatalf("escaping cycle resolved against wrong parent: a/sub/..=%v (a=%v), b/sub/..=%v (b=%v)",
			aUp, a, bUp, b)
	}
}

// Opaque entities (activities, foreign-state objects) keep identity, kind
// and label across the round trip.
func TestOpaqueLeavesRoundTrip(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	act := w.NewActivity("worker-1")
	if err := tr.Attach(nil, "svc", act); err != nil {
		t.Fatal(err)
	}

	st := newMemStore()
	root, err := st.Snapshot(w, tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	w2 := core.NewWorld()
	tr2, err := st.Restore(root, w2, "root")
	if err != nil {
		t.Fatal(err)
	}
	e, err := tr2.Lookup(core.ParsePath("svc"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != core.KindActivity {
		t.Fatalf("restored kind = %v, want activity", e.Kind)
	}
	if got := w2.Label(e); got != "worker-1" {
		t.Fatalf("restored opaque label = %q, want %q", got, "worker-1")
	}
}

// Activities that carry a context of their own round-trip as directories.
func TestActivityContextRoundTrip(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	act := w.NewActivity("job")
	ctx := core.NewContext()
	if err := w.SetState(act, ctx); err != nil {
		t.Fatal(err)
	}
	f := w.NewObject("out")
	if err := w.SetState(f, &dirtree.FileData{Content: "result"}); err != nil {
		t.Fatal(err)
	}
	ctx.Bind("out", f)
	if err := tr.Attach(nil, "job", act); err != nil {
		t.Fatal(err)
	}

	st := newMemStore()
	root, err := st.Snapshot(w, tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	w2 := core.NewWorld()
	tr2, err := st.Restore(root, w2, "root")
	if err != nil {
		t.Fatal(err)
	}
	e, err := tr2.Lookup(core.ParsePath("job"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != core.KindActivity {
		t.Fatalf("restored kind = %v, want activity", e.Kind)
	}
	data, err := tr2.FileAt(core.ParsePath("job/out"))
	if err != nil {
		t.Fatal(err)
	}
	if data.Content != "result" {
		t.Fatalf("restored activity context content = %q", data.Content)
	}
}

func TestDiffReportsChangedFrontierOnly(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	buildSample(t, tr)

	st := newMemStore()
	before, err := st.Snapshot(w, tr.Root)
	if err != nil {
		t.Fatal(err)
	}

	if changes, err := st.Diff(before, before); err != nil || len(changes) != 0 {
		t.Fatalf("self-diff = %v, %v; want empty", changes, err)
	}

	// One edit deep in the tree; one addition elsewhere.
	e, err := tr.Lookup(core.ParsePath("etc/conf/db"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetState(e, &dirtree.FileData{Content: "port=5433"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(core.ParsePath("var/log"), "boot"); err != nil {
		t.Fatal(err)
	}
	after, err := st.Snapshot(w, tr.Root)
	if err != nil {
		t.Fatal(err)
	}

	changes, err := st.Diff(before, after)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Change{}
	for _, c := range changes {
		got[c.Path.String()] = c
	}
	if len(got) != 2 {
		t.Fatalf("changes = %v, want exactly {etc/conf/db, var/log}", got)
	}
	edit, ok := got["etc/conf/db"]
	if !ok || edit.Old.IsZero() || edit.New.IsZero() {
		t.Fatalf("edit change = %+v, want both sides set", edit)
	}
	add, ok := got["var/log"]
	if !ok || !add.Old.IsZero() || add.New.IsZero() {
		t.Fatalf("add change = %+v, want only New set", add)
	}
}

func TestCatchUpCopiesOnlyMissingSubtrees(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	buildSample(t, tr)

	st := newMemStore()
	v1, err := st.Snapshot(w, tr.Root)
	if err != nil {
		t.Fatal(err)
	}

	replica := cas.NewMem()
	copied1, pruned1, err := st.CatchUp(replica, v1)
	if err != nil {
		t.Fatal(err)
	}
	if pruned1 != 0 {
		t.Fatalf("first catch-up pruned %d, want 0", pruned1)
	}
	if copied1 != replica.Len() {
		t.Fatalf("copied %d but replica holds %d", copied1, replica.Len())
	}

	// The replica can restore from its own blobs alone.
	w2 := core.NewWorld()
	tr2, err := New(cas.NewStore(replica)).Restore(v1, w2, "root")
	if err != nil {
		t.Fatal(err)
	}
	requireSameSignature(t, signature(t, tr), signature(t, tr2))

	// A caught-up replica re-fetches nothing.
	if copied, pruned, err := st.CatchUp(replica, v1); err != nil || copied != 0 || pruned != 1 {
		t.Fatalf("repeat catch-up = (%d copied, %d pruned, %v), want (0, 1, nil)", copied, pruned, err)
	}

	// One edit: only the changed spine travels.
	if _, err := tr.Create(core.ParsePath("etc/motd"), "hello"); err != nil {
		t.Fatal(err)
	}
	v2, err := st.Snapshot(w, tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	copied2, pruned2, err := st.CatchUp(replica, v2)
	if err != nil {
		t.Fatal(err)
	}
	// Changed: new file blob, etc dir, root dir. Everything else prunes.
	if copied2 >= copied1 {
		t.Fatalf("incremental catch-up copied %d, want fewer than the initial %d", copied2, copied1)
	}
	if pruned2 == 0 {
		t.Fatal("incremental catch-up pruned nothing")
	}
	w3 := core.NewWorld()
	tr3, err := New(cas.NewStore(replica)).Restore(v2, w3, "root")
	if err != nil {
		t.Fatal(err)
	}
	requireSameSignature(t, signature(t, tr), signature(t, tr3))
}

func TestManifestCommitLatestHistory(t *testing.T) {
	st := newMemStore()
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	buildSample(t, tr)
	root, err := st.Snapshot(w, tr.Root)
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := st.Latest(0); ok {
		t.Fatal("Latest on empty manifest reported an entry")
	}
	if err := st.Commit(0, 1, root); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(0, 1, root); err != nil { // idempotent re-commit
		t.Fatal(err)
	}
	if err := st.Commit(1, 4, root); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(0, 2, root); err != nil {
		t.Fatal(err)
	}

	last, ok := st.Latest(0)
	if !ok || last.Rev != 2 || last.Root != root.String() {
		t.Fatalf("Latest(0) = %+v, %v", last, ok)
	}
	hist := st.History(0)
	if len(hist) != 2 || hist[0].Rev != 1 || hist[1].Rev != 2 {
		t.Fatalf("History(0) = %+v, want revisions [1 2]", hist)
	}
	if got := st.History(1); len(got) != 1 || got[0].Rev != 4 {
		t.Fatalf("History(1) = %+v", got)
	}
	if h, err := last.RootHash(); err != nil || h != root {
		t.Fatalf("RootHash = %v, %v", h, err)
	}
}

func TestDurableStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	buildSample(t, tr)
	root, err := st.Snapshot(w, tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(0, 7, root); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	last, ok := st2.Latest(0)
	if !ok || last.Rev != 7 {
		t.Fatalf("reopened Latest(0) = %+v, %v", last, ok)
	}
	h, err := last.RootHash()
	if err != nil {
		t.Fatal(err)
	}
	w2 := core.NewWorld()
	tr2, err := st2.Restore(h, w2, "root")
	if err != nil {
		t.Fatal(err)
	}
	requireSameSignature(t, signature(t, tr), signature(t, tr2))
}

func TestRestoreMissingBlobIsBadSnapshot(t *testing.T) {
	st := newMemStore()
	var missing cas.Hash
	missing[0] = 0xAB
	if _, err := st.Restore(missing, core.NewWorld(), "root"); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("restore of missing root = %v, want ErrBadSnapshot", err)
	}
}

func TestKeeperFlushAndClose(t *testing.T) {
	st := newMemStore()
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	buildSample(t, tr)

	var rev uint64 = 1
	snaps := 0
	k := NewKeeper(st, 0) // periodic loop disabled; Flush drives it
	k.Track(0, func() uint64 { return rev }, func() (cas.Hash, uint64, error) {
		snaps++
		h, err := st.Snapshot(w, tr.Root)
		return h, rev, err
	})

	if err := k.Flush(); err != nil {
		t.Fatal(err)
	}
	if snaps != 1 {
		t.Fatalf("snaps = %d after first flush, want 1", snaps)
	}
	if last, ok := st.Latest(0); !ok || last.Rev != 1 {
		t.Fatalf("Latest(0) = %+v, %v", last, ok)
	}

	// Unchanged revision: flush is a no-op.
	if err := k.Flush(); err != nil {
		t.Fatal(err)
	}
	if snaps != 1 {
		t.Fatalf("snaps = %d after idle flush, want 1", snaps)
	}

	// Changed revision: Close takes the final snapshot.
	if _, err := tr.Create(core.ParsePath("var/final"), "bye"); err != nil {
		t.Fatal(err)
	}
	rev = 2
	k.Start()
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}
	if snaps != 2 {
		t.Fatalf("snaps = %d after close, want 2", snaps)
	}
	if last, ok := st.Latest(0); !ok || last.Rev != 2 {
		t.Fatalf("Latest(0) after close = %+v, %v", last, ok)
	}
	if err := k.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if snaps != 2 {
		t.Fatalf("second Close snapshotted again: snaps = %d", snaps)
	}
}

// A keeper tracking a shard whose manifest already names the current
// revision (the restart path) starts caught-up.
func TestKeeperStartsCaughtUpAfterRecovery(t *testing.T) {
	st := newMemStore()
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	buildSample(t, tr)
	root, err := st.Snapshot(w, tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(0, 3, root); err != nil {
		t.Fatal(err)
	}

	snaps := 0
	k := NewKeeper(st, 0)
	k.Track(0, func() uint64 { return 3 }, func() (cas.Hash, uint64, error) {
		snaps++
		h, err := st.Snapshot(w, tr.Root)
		return h, 3, err
	})
	if err := k.Flush(); err != nil {
		t.Fatal(err)
	}
	if snaps != 0 {
		t.Fatalf("keeper re-snapshotted a recovered shard %d times", snaps)
	}
}
