// Package snapstore is the naming graph's durable form: a Merkle tree of
// content-addressed context blobs over internal/cas. Every context object
// (directory) serializes to one canonical blob whose bytes incorporate its
// children's hashes, so one root hash names an entire subtree — and two
// subtrees with the same structure have the same root hash no matter which
// replica built them. That is the paper's weak coherence made structural:
// "replicas of the same subtree agree" stops being a protocol promise and
// becomes an identity in the store (pachyderm-hashtree-style nodes over a
// restic-style blob repository).
//
// The encoding is canonical — sorted bindings, varint framing, no
// reflection — so Snapshot∘Restore is a fixed point on root hashes, and it
// is the module's one on-disk context encoding (internal/persist streams
// through the same primitives). Cross-links that share a subtree become
// hash sharing; links back to an ancestor (cycles, including ".." parent
// links) are encoded as stack-relative cycle references, the Merkle
// analogue of a relative name: they are re-resolved against the access
// path on restore (§6's closure question, answered the paper's way).
//
// Store adds a revision-history manifest (shard revision → root hash,
// written atomically) for crash recovery, Diff for O(changed) comparison
// of two roots, CatchUp for replica bring-up that copies only missing
// subtrees, and Keeper for periodic and shutdown snapshots of serving
// shards.
package snapstore
