package snapstore

import (
	"fmt"
	"testing"

	"namecoherence/internal/cas"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

// benchTree builds a deep tree with replicated subtrees: fanout^depth
// directories where every directory holds files whose contents repeat
// across siblings, so content addressing has real sharing to find.
func benchTree(b *testing.B, fanout, depth, filesPerDir int) *dirtree.Tree {
	b.Helper()
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	var build func(at core.Path, d int)
	build = func(at core.Path, d int) {
		for f := 0; f < filesPerDir; f++ {
			// Content keyed by position in the subtree, not by absolute
			// path: sibling subtrees are byte-identical and dedup.
			p := at.Append(core.Name(fmt.Sprintf("f%d", f)))
			if _, err := tr.Create(p, fmt.Sprintf("payload-%d-%d", d, f)); err != nil {
				b.Fatal(err)
			}
		}
		if d == depth {
			return
		}
		for c := 0; c < fanout; c++ {
			sub := at.Append(core.Name(fmt.Sprintf("d%d", c)))
			if _, err := tr.MkdirAll(sub); err != nil {
				b.Fatal(err)
			}
			build(sub, d+1)
		}
	}
	build(nil, 0)
	return tr
}

func BenchmarkSnapstoreSnapshot(b *testing.B) {
	tr := benchTree(b, 4, 4, 3)
	st := newMemStore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Snapshot(tr.W, tr.Root); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(st.CAS().Stats().DedupRatio(), "dedup-ratio")
}

func BenchmarkSnapstoreRestore(b *testing.B) {
	tr := benchTree(b, 4, 4, 3)
	st := newMemStore()
	root, err := st.Snapshot(tr.W, tr.Root)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Restore(root, core.NewWorld(), "root"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapstoreDiff(b *testing.B) {
	tr := benchTree(b, 4, 4, 3)
	st := newMemStore()
	before, err := st.Snapshot(tr.W, tr.Root)
	if err != nil {
		b.Fatal(err)
	}
	// One deep edit: Diff should touch only the changed spine.
	e, err := tr.Lookup(core.ParsePath("d0/d0/d0/d0/f0"))
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.W.SetState(e, &dirtree.FileData{Content: "edited"}); err != nil {
		b.Fatal(err)
	}
	after, err := st.Snapshot(tr.W, tr.Root)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		changes, err := st.Diff(before, after)
		if err != nil {
			b.Fatal(err)
		}
		if len(changes) != 1 {
			b.Fatalf("changes = %d, want 1", len(changes))
		}
	}
}

func BenchmarkSnapstoreCatchUp(b *testing.B) {
	tr := benchTree(b, 4, 4, 3)
	st := newMemStore()
	before, err := st.Snapshot(tr.W, tr.Root)
	if err != nil {
		b.Fatal(err)
	}
	e, err := tr.Lookup(core.ParsePath("d0/d0/d0/d0/f0"))
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.W.SetState(e, &dirtree.FileData{Content: "edited"}); err != nil {
		b.Fatal(err)
	}
	after, err := st.Snapshot(tr.W, tr.Root)
	if err != nil {
		b.Fatal(err)
	}
	var copied, pruned int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		replica := cas.NewMem()
		if _, _, err := st.CatchUp(replica, before); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		copied, pruned, err = st.CatchUp(replica, after)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(copied), "blobs-copied")
	b.ReportMetric(float64(pruned), "subtrees-pruned")
}
