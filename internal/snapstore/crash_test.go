package snapstore

import (
	"errors"
	"testing"

	"namecoherence/internal/cas"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

// A writer killed mid-snapshot (simulated by failing a blob publish after
// its temp file is written) must leave the store recoverable: the
// previous committed root restores intact, no corrupt blob is visible,
// and reopening sweeps the abandoned temp files.
func TestCrashMidSnapshotPreservesPreviousRoot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	buildSample(t, tr)
	v1, err := st.Snapshot(w, tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(0, 1, v1); err != nil {
		t.Fatal(err)
	}
	wantSig := signature(t, tr)

	// Mutate, then kill the writer partway through the second snapshot:
	// the first new blob dies after its temp file hits disk.
	if _, err := tr.Create(core.ParsePath("var/next"), "unfinished"); err != nil {
		t.Fatal(err)
	}
	local, ok := st.CAS().Backend().(*cas.Local)
	if !ok {
		t.Fatalf("durable store backend is %T, want *cas.Local", st.CAS().Backend())
	}
	crash := errors.New("simulated crash")
	local.PutHook = func(cas.Hash, string) error { return crash }
	if _, err := st.Snapshot(w, tr.Root); !errors.Is(err, crash) {
		t.Fatalf("snapshot through crashing writer = %v, want the crash", err)
	}
	local.PutHook = nil

	// The manifest still names v1 and nothing visible is corrupt.
	if last, ok := st.Latest(0); !ok || last.Rev != 1 || last.Root != v1.String() {
		t.Fatalf("Latest(0) after crash = %+v, %v; want rev 1 at %s", last, ok, v1)
	}

	// Restart: reopen the directory as a fresh process would.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt, err := st2.CAS().Verify(); err != nil || len(corrupt) != 0 {
		t.Fatalf("Verify after crash = %v, %v; want clean", corrupt, err)
	}
	last, ok := st2.Latest(0)
	if !ok || last.Rev != 1 {
		t.Fatalf("reopened Latest(0) = %+v, %v", last, ok)
	}
	h, err := last.RootHash()
	if err != nil {
		t.Fatal(err)
	}
	w2 := core.NewWorld()
	tr2, err := st2.Restore(h, w2, "root")
	if err != nil {
		t.Fatalf("restore of previous root after crash: %v", err)
	}
	// The restored graph is the pre-crash commit: no trace of the
	// half-written mutation.
	if _, err := tr2.Lookup(core.ParsePath("var/next")); err == nil {
		t.Fatal("half-snapshotted file leaked into the recovered tree")
	}
	requireSameSignature(t, wantSig, signature(t, tr2))

	// The writer retries after restart and completes.
	v2, err := st2.Snapshot(w, tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Commit(0, 2, v2); err != nil {
		t.Fatal(err)
	}
	w3 := core.NewWorld()
	tr3, err := st2.Restore(v2, w3, "root")
	if err != nil {
		t.Fatal(err)
	}
	requireSameSignature(t, signature(t, tr), signature(t, tr3))
}

// A crash later in the snapshot — after some new blobs published — is
// equally recoverable: published blobs are just unreferenced garbage, the
// manifest never saw the new root.
func TestCrashAfterPartialPublishIsRecoverable(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	buildSample(t, tr)
	v1, err := st.Snapshot(w, tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(0, 1, v1); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		p := core.ParsePath("churn/f" + string(rune('a'+i)))
		if _, err := tr.Create(p, "gen"+string(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	local := st.CAS().Backend().(*cas.Local)
	crash := errors.New("simulated crash")
	allowed := 2 // let two new blobs publish, then die
	local.PutHook = func(cas.Hash, string) error {
		if allowed > 0 {
			allowed--
			return nil
		}
		return crash
	}
	if _, err := st.Snapshot(w, tr.Root); !errors.Is(err, crash) {
		t.Fatalf("snapshot = %v, want the crash", err)
	}
	local.PutHook = nil

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt, err := st2.CAS().Verify(); err != nil || len(corrupt) != 0 {
		t.Fatalf("Verify = %v, %v; want clean", corrupt, err)
	}
	last, _ := st2.Latest(0)
	h, err := last.RootHash()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Restore(h, core.NewWorld(), "root"); err != nil {
		t.Fatalf("restore of committed root: %v", err)
	}
	if _, err := st2.Snapshot(w, tr.Root); err != nil {
		t.Fatalf("retry after restart: %v", err)
	}
}
