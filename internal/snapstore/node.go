package snapstore

import (
	"fmt"
	"sort"

	"namecoherence/internal/cas"
	"namecoherence/internal/core"
)

// NodeKind discriminates the blob forms a naming-graph entity serializes
// to.
type NodeKind uint8

const (
	// KindDir is a context object: a sorted list of (name, ref) bindings.
	KindDir NodeKind = iota + 1
	// KindFile is a regular file: content plus embedded compound names.
	KindFile
	// KindOpaque is an entity the store cannot open (an activity or an
	// object with foreign state): identity survives, state does not.
	KindOpaque
)

// nodeMagic and nodeVersion frame every node blob. Bump the version when
// the canonical encoding changes — old blobs stay readable by their hash,
// they just stop being produced.
const (
	nodeMagic   = 'N'
	nodeVersion = 1
)

// Ref is a directory entry's target: either the hash of an independently
// stored subtree, or a cycle reference — the distance up the DFS stack to
// an ancestor (0 = the node itself, 1 = its parent), the canonical form of
// a link back into the current access path such as a ".." parent link.
// Cycle references are the store's relative names: they are re-resolved
// against the access path on restore.
type Ref struct {
	Hash    cas.Hash
	Cycle   uint32
	IsCycle bool
}

// Entry is one binding of a directory node.
type Entry struct {
	Name core.Name
	Ref  Ref
}

// Node is the decoded form of one blob. Labels are deliberately absent
// from dir and file nodes: identity is structure, and a restored entity
// takes its label from the name that binds it — only opaque leaves, whose
// label is all that survives, carry one.
type Node struct {
	Kind NodeKind
	// EntityKind records whether a dir node's entity was an object or an
	// activity (activities may carry context state too); file nodes are
	// always objects.
	EntityKind core.Kind
	// Entries are a dir node's bindings, sorted by name.
	Entries []Entry
	// Content and Embedded are a file node's payload.
	Content  string
	Embedded []core.Path
	// Label is an opaque leaf's debug label.
	Label string
}

// Encode renders the node in canonical form. Entries are sorted in place:
// canonical bytes never depend on insertion order.
func (n *Node) Encode() []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, nodeMagic, nodeVersion, byte(n.Kind))
	switch n.Kind {
	case KindDir:
		buf = append(buf, byte(n.EntityKind))
		sort.Slice(n.Entries, func(i, j int) bool { return n.Entries[i].Name < n.Entries[j].Name })
		buf = AppendUvarint(buf, uint64(len(n.Entries)))
		for _, e := range n.Entries {
			buf = AppendString(buf, string(e.Name))
			if e.Ref.IsCycle {
				buf = append(buf, 1)
				buf = AppendUvarint(buf, uint64(e.Ref.Cycle))
			} else {
				buf = append(buf, 0)
				buf = append(buf, e.Ref.Hash[:]...)
			}
		}
	case KindFile:
		buf = AppendFileState(buf, n.Content, n.Embedded)
	case KindOpaque:
		buf = append(buf, byte(n.EntityKind))
		buf = AppendString(buf, n.Label)
	}
	return buf
}

// AppendFileState appends the canonical encoding of a regular file's
// state: content, then its embedded compound names. internal/persist
// shares this framing, so a file state has exactly one on-disk form.
func AppendFileState(buf []byte, content string, embedded []core.Path) []byte {
	buf = AppendString(buf, content)
	buf = AppendUvarint(buf, uint64(len(embedded)))
	for _, p := range embedded {
		buf = AppendPath(buf, p)
	}
	return buf
}

// ReadFileState decodes what AppendFileState wrote.
func ReadFileState(r *Reader) (content string, embedded []core.Path) {
	content = r.String()
	n := r.Uvarint()
	if n > uint64(r.Len()) {
		// Impossible in a well-formed encoding; poison instead of allocating.
		r.fail("embedded count")
		return content, nil
	}
	for i := uint64(0); i < n; i++ {
		embedded = append(embedded, r.Path())
	}
	return content, embedded
}

// DecodeNode parses a canonical node blob.
func DecodeNode(data []byte) (*Node, error) {
	r := NewReader(data)
	if r.Byte() != nodeMagic || r.Byte() != nodeVersion {
		return nil, fmt.Errorf("node header: %w", ErrTruncated)
	}
	n := &Node{Kind: NodeKind(r.Byte())}
	switch n.Kind {
	case KindDir:
		n.EntityKind = core.Kind(r.Byte())
		count := r.Uvarint()
		if count > uint64(r.Len()) {
			return nil, fmt.Errorf("entry count %d: %w", count, ErrTruncated)
		}
		for i := uint64(0); i < count; i++ {
			e := Entry{Name: core.Name(r.String())}
			switch r.Byte() {
			case 1:
				e.Ref.IsCycle = true
				e.Ref.Cycle = uint32(r.Uvarint())
			case 0:
				copy(e.Ref.Hash[:], r.Fixed(cas.HashSize))
			default:
				return nil, fmt.Errorf("entry ref tag: %w", ErrTruncated)
			}
			n.Entries = append(n.Entries, e)
		}
	case KindFile:
		n.EntityKind = core.KindObject
		n.Content, n.Embedded = ReadFileState(r)
	case KindOpaque:
		n.EntityKind = core.Kind(r.Byte())
		n.Label = r.String()
	default:
		return nil, fmt.Errorf("node kind %d: %w", n.Kind, ErrTruncated)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return n, nil
}
