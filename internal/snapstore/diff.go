package snapstore

import (
	"fmt"

	"namecoherence/internal/cas"
	"namecoherence/internal/core"
)

// Change is one differing binding between two snapshot roots. Old and New
// are the subtree hashes on each side; a zero hash means the binding is
// absent on that side (or is a cycle reference, which has no independent
// subtree — CycleChanged marks that case).
type Change struct {
	Path         core.Path
	Old, New     cas.Hash
	CycleChanged bool
}

// Diff compares two snapshot roots and returns the frontier of difference:
// for every binding whose subtree hash differs, one Change naming the
// deepest common path. Equal hashes prune whole subtrees without reading
// a single blob below them, so the cost is O(changed), not O(tree) — the
// property replica catch-up rides on.
func (s *Store) Diff(a, b cas.Hash) ([]Change, error) {
	var out []Change
	err := s.diffNodes(nil, a, b, &out)
	return out, err
}

// diffNodes recurses over the two nodes' entries, appending changes.
func (s *Store) diffNodes(path core.Path, a, b cas.Hash, out *[]Change) error {
	if a == b {
		return nil
	}
	na, err := s.loadNode(a)
	if err != nil {
		return err
	}
	nb, err := s.loadNode(b)
	if err != nil {
		return err
	}
	// Only a dir/dir pair can be compared binding-by-binding; anything
	// else is one changed subtree.
	if na == nil || nb == nil || na.Kind != KindDir || nb.Kind != KindDir {
		*out = append(*out, Change{Path: path.Clone(), Old: a, New: b})
		return nil
	}
	ea, eb := na.Entries, nb.Entries
	i, j := 0, 0
	for i < len(ea) || j < len(eb) {
		switch {
		case j >= len(eb) || (i < len(ea) && ea[i].Name < eb[j].Name):
			*out = append(*out, Change{
				Path: path.Append(ea[i].Name), Old: ea[i].Ref.Hash,
				CycleChanged: ea[i].Ref.IsCycle,
			})
			i++
		case i >= len(ea) || ea[i].Name > eb[j].Name:
			*out = append(*out, Change{
				Path: path.Append(eb[j].Name), New: eb[j].Ref.Hash,
				CycleChanged: eb[j].Ref.IsCycle,
			})
			j++
		default:
			ra, rb := ea[i].Ref, eb[j].Ref
			childPath := path.Append(ea[i].Name)
			switch {
			case ra.IsCycle || rb.IsCycle:
				if ra.IsCycle != rb.IsCycle || ra.Cycle != rb.Cycle {
					*out = append(*out, Change{
						Path: childPath, Old: ra.Hash, New: rb.Hash, CycleChanged: true,
					})
				}
			case ra.Hash != rb.Hash:
				if err := s.diffNodes(childPath, ra.Hash, rb.Hash, out); err != nil {
					return err
				}
			}
			i++
			j++
		}
	}
	return nil
}

// loadNode fetches and decodes one node blob; a zero hash is nil (absent).
func (s *Store) loadNode(h cas.Hash) (*Node, error) {
	if h.IsZero() {
		return nil, nil
	}
	data, err := s.cs.Get(h)
	if err != nil {
		return nil, fmt.Errorf("diff load %s: %w", h, err)
	}
	n, err := DecodeNode(data)
	if err != nil {
		return nil, fmt.Errorf("diff decode %s: %w", h, err)
	}
	return n, nil
}

// CatchUp copies the blob graph under root from this store into dst,
// pruning every subtree whose root blob dst already holds: because blobs
// are written post-order (children before parents, both here and in
// Snapshot), holding a node implies holding its whole subtree. It returns
// how many blobs were copied and how many subtrees were pruned — the
// hash-diff replica catch-up: a replica that already has yesterday's tree
// fetches only the changed spine.
func (s *Store) CatchUp(dst cas.Backend, root cas.Hash) (copied, pruned int, err error) {
	err = s.catchUp(dst, root, &copied, &pruned)
	return copied, pruned, err
}

func (s *Store) catchUp(dst cas.Backend, h cas.Hash, copied, pruned *int) error {
	ok, err := dst.Has(h)
	if err != nil {
		return fmt.Errorf("catch-up has %s: %w", h, err)
	}
	if ok {
		*pruned++
		return nil
	}
	data, err := s.cs.Get(h)
	if err != nil {
		return fmt.Errorf("catch-up load %s: %w", h, err)
	}
	node, err := DecodeNode(data)
	if err != nil {
		return fmt.Errorf("catch-up decode %s: %w", h, err)
	}
	if node.Kind == KindDir {
		for _, e := range node.Entries {
			if e.Ref.IsCycle {
				continue
			}
			if err := s.catchUp(dst, e.Ref.Hash, copied, pruned); err != nil {
				return err
			}
		}
	}
	// Children first: dst gains the parent only after its whole subtree,
	// preserving the pruning invariant for the next catch-up.
	if err := dst.Put(h, data); err != nil {
		return fmt.Errorf("catch-up store %s: %w", h, err)
	}
	*copied++
	return nil
}
