package snapstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"namecoherence/internal/core"
)

// The canonical encoding primitives: unsigned varints, length-prefixed
// strings, and compound names built from them. Everything the module
// writes to disk — snapstore node blobs and internal/persist world
// snapshots — is framed with these, so there is exactly one on-disk
// context encoding and its determinism is decided here: no maps are
// iterated, no reflection runs, and every writer sorts before it appends.

// ErrTruncated is wrapped by every decode error caused by running out of
// bytes or reading malformed framing.
var ErrTruncated = errors.New("truncated or malformed encoding")

// AppendUvarint appends v in unsigned varint form.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendString appends a length-prefixed string.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendBytes appends a length-prefixed byte string.
func AppendBytes(buf []byte, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// AppendPath appends a compound name: component count, then each simple
// name length-prefixed.
func AppendPath(buf []byte, p core.Path) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	for _, n := range p {
		buf = AppendString(buf, string(n))
	}
	return buf
}

// Reader decodes the canonical primitives from a byte slice. The first
// framing error sticks: every subsequent read returns the zero value, and
// Err reports what went wrong, so decode loops can run unchecked and
// validate once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// fail records the first error.
func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%s at offset %d: %w", what, r.off, ErrTruncated)
	}
}

// Uvarint decodes one unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Byte decodes one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("byte")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bytes decodes a length-prefixed byte string, returning a view into the
// underlying buffer (callers must copy if they retain it past the buffer).
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("byte string")
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// Fixed decodes exactly n raw bytes (no length prefix), returning a view
// into the underlying buffer.
func (r *Reader) Fixed(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n > len(r.buf)-r.off {
		r.fail("fixed bytes")
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	return string(r.Bytes())
}

// Path decodes a compound name.
func (r *Reader) Path() core.Path {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	// Each component costs at least one length byte; reject counts the
	// remaining bytes cannot possibly satisfy before allocating.
	if n > uint64(r.Len()) {
		r.fail("path length")
		return nil
	}
	p := make(core.Path, 0, n)
	for i := uint64(0); i < n; i++ {
		p = append(p, core.Name(r.String()))
	}
	if r.err != nil {
		return nil
	}
	return p
}
