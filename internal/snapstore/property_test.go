package snapstore

import (
	"fmt"
	"math/rand"
	"testing"

	"namecoherence/internal/cas"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

// randomTree drives a tree through a random operation sequence and
// returns it, mirroring dirtree's property-test generator.
func randomTree(t *testing.T, rng *rand.Rand, parentLinks bool) *dirtree.Tree {
	t.Helper()
	w := core.NewWorld()
	var tr *dirtree.Tree
	if parentLinks {
		tr = dirtree.NewWithParentLinks(w, "root")
	} else {
		tr = dirtree.New(w, "root")
	}
	dirPaths := []string{""}
	var filePaths []string
	for step := 0; step < 80; step++ {
		parent := dirPaths[rng.Intn(len(dirPaths))]
		name := fmt.Sprintf("e%03d", step)
		child := name
		if parent != "" {
			child = parent + "/" + name
		}
		switch rng.Intn(4) {
		case 0: // mkdir
			if _, err := tr.Mkdir(core.ParsePath(parent), core.Name(name)); err != nil {
				t.Fatalf("step %d mkdir: %v", step, err)
			}
			dirPaths = append(dirPaths, child)
		case 1, 2: // create file, duplicated content now and then for dedup
			content := fmt.Sprintf("content-%d", step%7)
			if _, err := tr.Create(core.ParsePath(child), content); err != nil {
				t.Fatalf("step %d create: %v", step, err)
			}
			filePaths = append(filePaths, child)
		case 3: // detach a random file (if any)
			if len(filePaths) == 0 {
				continue
			}
			i := rng.Intn(len(filePaths))
			p := core.ParsePath(filePaths[i])
			if err := tr.Detach(p[:len(p)-1], p[len(p)-1]); err != nil {
				t.Fatalf("step %d detach: %v", step, err)
			}
			filePaths = append(filePaths[:i], filePaths[i+1:]...)
		}
	}
	return tr
}

// Snapshot∘Restore is a fixed point: restoring a snapshot and
// snapshotting the restored world reproduces the identical root hash,
// and the restored tree is structurally equal to the original.
func TestSnapshotRestoreFixedPoint(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tr := randomTree(t, rng, seed%2 == 1)

			st := newMemStore()
			h1, err := st.Snapshot(tr.W, tr.Root)
			if err != nil {
				t.Fatal(err)
			}

			w2 := core.NewWorld()
			tr2, err := st.Restore(h1, w2, "root")
			if err != nil {
				t.Fatal(err)
			}
			requireSameSignature(t, signature(t, tr), signature(t, tr2))

			h2, err := st.Snapshot(w2, tr2.Root)
			if err != nil {
				t.Fatal(err)
			}
			if h1 != h2 {
				t.Fatalf("fixed point violated: %s → restore → %s", h1, h2)
			}

			// Restore of the re-snapshot closes the loop.
			w3 := core.NewWorld()
			tr3, err := st.Restore(h2, w3, "root")
			if err != nil {
				t.Fatal(err)
			}
			requireSameSignature(t, signature(t, tr2), signature(t, tr3))
		})
	}
}

// Snapshotting the same world twice writes nothing new: every blob of the
// second pass dedups against the first.
func TestRepeatedSnapshotIsPureDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTree(t, rng, false)

	st := newMemStore()
	h1, err := st.Snapshot(tr.W, tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	stored := st.CAS().Stats().Stored
	h2, err := st.Snapshot(tr.W, tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("same world snapshotted to different roots: %s vs %s", h1, h2)
	}
	if got := st.CAS().Stats().Stored; got != stored {
		t.Fatalf("second snapshot stored %d new blobs", got-stored)
	}
	if ratio := st.CAS().Stats().DedupRatio(); ratio <= 1 {
		t.Fatalf("dedup ratio = %v, want > 1", ratio)
	}
}

// Catch-up into an empty replica transfers a blob set sufficient to
// restore a structurally identical tree, for arbitrary random trees.
func TestCatchUpRestoresRandomTrees(t *testing.T) {
	for seed := int64(20); seed < 23; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tr := randomTree(t, rng, seed%2 == 0)
			st := newMemStore()
			root, err := st.Snapshot(tr.W, tr.Root)
			if err != nil {
				t.Fatal(err)
			}
			replica := cas.NewMem()
			if _, _, err := st.CatchUp(replica, root); err != nil {
				t.Fatal(err)
			}
			w2 := core.NewWorld()
			tr2, err := New(cas.NewStore(replica)).Restore(root, w2, "root")
			if err != nil {
				t.Fatal(err)
			}
			requireSameSignature(t, signature(t, tr), signature(t, tr2))
		})
	}
}
