package trace

import (
	"testing"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

func build(t *testing.T) (*core.World, *dirtree.Tree, *Counter) {
	t.Helper()
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	if _, err := tr.Create(core.ParsePath("a/b/leaf"), "x"); err != nil {
		t.Fatal(err)
	}
	c := NewCounter()
	if wrapped := InstrumentReachable(w, tr.Root, c); wrapped != 3 {
		t.Fatalf("wrapped = %d, want 3 (root, a, b)", wrapped)
	}
	return w, tr, c
}

func TestCountsPerLevel(t *testing.T) {
	_, tr, c := build(t)
	// Fetch the level-1 directory before counting starts mattering.
	a, err := tr.Lookup(core.PathOf("a"))
	if err != nil {
		t.Fatal(err)
	}
	c.Reset()

	// Each full resolution of a/b/leaf does one lookup in each of the
	// root, a and b contexts.
	for i := 0; i < 10; i++ {
		if _, err := tr.Lookup(core.ParsePath("a/b/leaf")); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Count(tr.Root); got != 10 {
		t.Fatalf("root count = %d, want 10", got)
	}
	if got := c.Count(a); got != 10 {
		t.Fatalf("a count = %d, want 10", got)
	}
	if got := c.Total(); got != 30 {
		t.Fatalf("total = %d, want 30", got)
	}
}

func TestTopOrdering(t *testing.T) {
	_, tr, c := build(t)
	for i := 0; i < 5; i++ {
		if _, err := tr.Lookup(core.ParsePath("a/b/leaf")); err != nil {
			t.Fatal(err)
		}
	}
	// One extra lookup that only touches the root.
	if _, err := tr.Lookup(core.PathOf("a")); err != nil {
		t.Fatal(err)
	}
	top := c.Top(2)
	if len(top) != 2 {
		t.Fatalf("Top = %v", top)
	}
	if top[0].Entity != tr.Root.ID || top[0].Count != 6 {
		t.Fatalf("hottest = %+v, want root with 6", top[0])
	}
	if top[1].Count > top[0].Count {
		t.Fatal("Top not descending")
	}
}

func TestInstrumentIdempotent(t *testing.T) {
	w, tr, c := build(t)
	if again := InstrumentReachable(w, tr.Root, c); again != 0 {
		t.Fatalf("re-instrument wrapped %d", again)
	}
}

func TestMutationsPassThrough(t *testing.T) {
	w, tr, c := build(t)
	rootCtx, _ := w.ContextOf(tr.Root)
	e := w.NewObject("new")
	rootCtx.Bind("new", e)
	if got := rootCtx.Lookup("new"); got != e {
		t.Fatal("bind through wrapper failed")
	}
	rootCtx.Unbind("new")
	if got := rootCtx.Lookup("new"); !got.IsUndefined() {
		t.Fatal("unbind through wrapper failed")
	}
	if rootCtx.Len() != 1 || len(rootCtx.Names()) != 1 {
		t.Fatal("Len/Names delegation broken")
	}
	_ = c
}

func TestReset(t *testing.T) {
	_, tr, c := build(t)
	if _, err := tr.Lookup(core.ParsePath("a/b/leaf")); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if c.Total() != 0 || c.Count(tr.Root) != 0 {
		t.Fatal("Reset did not clear")
	}
	if len(c.Top(5)) != 0 {
		t.Fatal("Top after reset not empty")
	}
}
