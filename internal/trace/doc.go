// Package trace instruments contexts to count resolution traffic: how many
// lookups each context object serves. Naming trees concentrate load at
// their top — every compound name resolves its first component in the root
// context — which is the classic argument for caching upper-level bindings
// and for per-process roots; ablation A5 measures the concentration.
package trace
