package trace

import (
	"sort"
	"sync"

	"namecoherence/internal/core"
)

// Counter accumulates per-context lookup counts.
type Counter struct {
	mu     sync.Mutex
	counts map[core.EntityID]int64
	total  int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[core.EntityID]int64)}
}

// countingContext attributes lookups through inner to entity id.
type countingContext struct {
	inner   core.Context
	counter *Counter
	id      core.EntityID
}

var _ core.Context = (*countingContext)(nil)

// Lookup implements core.Context, counting the call.
func (c *countingContext) Lookup(n core.Name) core.Entity {
	c.counter.mu.Lock()
	c.counter.counts[c.id]++
	c.counter.total++
	c.counter.mu.Unlock()
	return c.inner.Lookup(n)
}

// Bind implements core.Context.
func (c *countingContext) Bind(n core.Name, e core.Entity) { c.inner.Bind(n, e) }

// Unbind implements core.Context.
func (c *countingContext) Unbind(n core.Name) { c.inner.Unbind(n) }

// Names implements core.Context.
func (c *countingContext) Names() []core.Name { return c.inner.Names() }

// Len implements core.Context.
func (c *countingContext) Len() int { return c.inner.Len() }

// Wrap returns a counting context attributing lookups to e.
func (c *Counter) Wrap(e core.Entity, inner core.Context) core.Context {
	return &countingContext{inner: inner, counter: c, id: e.ID}
}

// InstrumentReachable wraps the context of every context object reachable
// from root with a counting wrapper attributing to that object, and
// returns how many were wrapped. Already-instrumented contexts are left
// alone.
func InstrumentReachable(w *core.World, root core.Entity, c *Counter) int {
	wrapped := 0
	for id := range w.Reachable(root) {
		e := core.Entity{ID: id, Kind: core.KindObject}
		if !w.Exists(e) {
			continue
		}
		ctx, ok := w.ContextOf(e)
		if !ok {
			continue
		}
		if _, already := ctx.(*countingContext); already {
			continue
		}
		if err := w.SetState(e, c.Wrap(e, ctx)); err == nil {
			wrapped++
		}
	}
	return wrapped
}

// Count returns the lookups attributed to e.
func (c *Counter) Count(e core.Entity) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[e.ID]
}

// Total returns all counted lookups.
func (c *Counter) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Load is one context's share of the traffic.
type Load struct {
	// Entity is the context object.
	Entity core.EntityID
	// Count is the number of lookups it served.
	Count int64
}

// Top returns the n busiest contexts, descending (ties by id).
func (c *Counter) Top(n int) []Load {
	c.mu.Lock()
	loads := make([]Load, 0, len(c.counts))
	for id, cnt := range c.counts {
		loads = append(loads, Load{Entity: id, Count: cnt})
	}
	c.mu.Unlock()
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].Count != loads[j].Count {
			return loads[i].Count > loads[j].Count
		}
		return loads[i].Entity < loads[j].Entity
	})
	if n < len(loads) {
		loads = loads[:n]
	}
	return loads
}

// Reset clears all counts.
func (c *Counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts = make(map[core.EntityID]int64)
	c.total = 0
}
