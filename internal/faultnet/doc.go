// Package faultnet wraps a net.Listener so that tests and experiments can
// inject network faults deterministically: dropped connections, hung reads,
// and resets. The wrapped listener sits between a real client and a real
// server; flipping its mode changes how every current and future connection
// behaves, without touching either endpoint.
//
// The package exists to exercise the failure model of the fault-tolerant
// cluster client (deadlines, retry, replica failover, circuit breaking):
// a replica behind a faultnet.Listener in Reset or Hang mode looks exactly
// like a crashed or wedged name server.
package faultnet
