package faultnet

import (
	"errors"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections on l and echoes every byte back.
func echoServer(t *testing.T, l *Listener) {
	t.Helper()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 64)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
}

func startEcho(t *testing.T) *Listener {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := Wrap(inner)
	t.Cleanup(func() { _ = l.Close() })
	echoServer(t, l)
	return l
}

func roundTrip(conn net.Conn, msg string) (string, error) {
	if _, err := conn.Write([]byte(msg)); err != nil {
		return "", err
	}
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	return string(buf[:n]), err
}

func TestPassForwards(t *testing.T) {
	l := startEcho(t)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := roundTrip(conn, "hello")
	if err != nil || got != "hello" {
		t.Fatalf("echo = %q, %v", got, err)
	}
}

func TestDropClosesNewConnsOnly(t *testing.T) {
	l := startEcho(t)
	old, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	if _, err := roundTrip(old, "warm"); err != nil {
		t.Fatal(err)
	}

	l.SetMode(Drop)
	fresh, err := net.Dial("tcp", l.Addr().String())
	if err == nil {
		// The TCP handshake may succeed before the server-side close; the
		// first use must fail.
		defer fresh.Close()
		_ = fresh.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := roundTrip(fresh, "x"); err == nil {
			t.Fatal("round-trip on dropped connection succeeded")
		}
	}
	// The established connection still works.
	if got, err := roundTrip(old, "still"); err != nil || got != "still" {
		t.Fatalf("established conn under Drop = %q, %v", got, err)
	}
	if l.Drops() == 0 {
		t.Fatal("Drops = 0, want at least 1")
	}
}

func TestHangBlocksUntilModeChange(t *testing.T) {
	l := startEcho(t)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(conn, "warm"); err != nil {
		t.Fatal(err)
	}

	l.SetMode(Hang)
	// The server no longer reads: a round-trip must block past its own
	// deadline rather than complete.
	_ = conn.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := roundTrip(conn, "stall"); err == nil {
		t.Fatal("round-trip completed under Hang")
	}
	_ = conn.SetDeadline(time.Time{})

	// Healing the fault unblocks the server; the stalled bytes drain and
	// a fresh round-trip completes.
	l.SetMode(Pass)
	if _, err := conn.Write([]byte("again")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

func TestResetFailsEstablishedConns(t *testing.T) {
	l := startEcho(t)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(conn, "warm"); err != nil {
		t.Fatal(err)
	}

	l.SetMode(Reset)
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := roundTrip(conn, "dead"); err == nil {
		t.Fatal("round-trip succeeded under Reset")
	}
}

func TestCloseUnblocksHungConn(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := Wrap(inner)
	defer l.Close()

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted

	l.SetMode(Hang)
	readErr := make(chan error, 1)
	go func() {
		_, err := server.Read(make([]byte, 8))
		readErr <- err
	}()
	_ = server.Close()
	select {
	case err := <-readErr:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("hung read after close = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hung read not unblocked by Close")
	}
}
