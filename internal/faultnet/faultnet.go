package faultnet

import (
	"errors"
	"net"
	"sync"
)

// Mode selects the fault a Listener injects.
type Mode int

// Modes. Pass is the zero value: traffic flows untouched.
const (
	// Pass forwards traffic untouched.
	Pass Mode = iota
	// Drop closes every new connection at accept time; established
	// connections keep working. It models a server whose accept queue
	// resets newcomers while existing sessions survive.
	Drop
	// Hang stalls every read and write, on established connections and
	// new ones alike, until the connection is closed or the mode changes.
	// It models a wedged server: the peer blocks until its own deadline
	// fires.
	Hang
	// Reset fails reads and writes immediately on every connection and
	// closes new ones at accept time. It models a crashed server: the
	// peer sees a transport error at once.
	Reset
)

// String returns the mode tag.
func (m Mode) String() string {
	switch m {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Hang:
		return "hang"
	case Reset:
		return "reset"
	default:
		return "unknown"
	}
}

// ErrReset is the error reads and writes return under Reset mode.
var ErrReset = errors.New("faultnet: connection reset")

// Listener wraps an inner listener and injects the current mode's fault
// into every connection it accepts. The zero mode is Pass; SetMode takes
// effect immediately, for established connections too.
type Listener struct {
	inner net.Listener

	mu      sync.Mutex
	mode    Mode
	changed chan struct{} // closed and replaced on every SetMode
	drops   int
}

// Wrap returns a fault-injecting listener around ln, starting in Pass mode.
func Wrap(ln net.Listener) *Listener {
	return &Listener{inner: ln, changed: make(chan struct{})}
}

// SetMode switches the injected fault. Connections blocked in Hang mode
// re-check the mode immediately.
func (l *Listener) SetMode(m Mode) {
	l.mu.Lock()
	l.mode = m
	close(l.changed)
	l.changed = make(chan struct{})
	l.mu.Unlock()
}

// Mode returns the current mode.
func (l *Listener) Mode() Mode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mode
}

// state returns the mode together with a channel closed at the next mode
// change, so a blocked connection can wait for either.
func (l *Listener) state() (Mode, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mode, l.changed
}

// Drops returns how many connections were closed at accept time (Drop and
// Reset modes).
func (l *Listener) Drops() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.drops
}

// Accept waits for the next connection that survives the current mode:
// under Drop or Reset, incoming connections are closed and counted, and
// Accept keeps waiting.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		mode := l.Mode()
		if mode == Drop || mode == Reset {
			_ = c.Close()
			l.mu.Lock()
			l.drops++
			l.mu.Unlock()
			continue
		}
		return &Conn{Conn: c, l: l, closed: make(chan struct{})}, nil
	}
}

// Close closes the inner listener. Accepted connections are unaffected
// (their owner closes them).
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the inner listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Conn is one accepted connection under fault injection. Reads and writes
// consult the listener's mode on every call.
type Conn struct {
	net.Conn
	l *Listener

	once   sync.Once
	closed chan struct{}
}

// Read reads from the inner connection under the current mode: Hang blocks
// until close or a mode change, Reset fails at once.
func (c *Conn) Read(b []byte) (int, error) {
	for {
		mode, changed := c.l.state()
		switch mode {
		case Hang:
			select {
			case <-c.closed:
				return 0, net.ErrClosed
			case <-changed:
			}
		case Reset:
			_ = c.Close()
			return 0, ErrReset
		default:
			return c.Conn.Read(b)
		}
	}
}

// Write writes to the inner connection under the current mode, with the
// same rules as Read.
func (c *Conn) Write(b []byte) (int, error) {
	for {
		mode, changed := c.l.state()
		switch mode {
		case Hang:
			select {
			case <-c.closed:
				return 0, net.ErrClosed
			case <-changed:
			}
		case Reset:
			_ = c.Close()
			return 0, ErrReset
		default:
			return c.Conn.Write(b)
		}
	}
}

// Close closes the inner connection and unblocks hung reads and writes.
func (c *Conn) Close() error {
	var err error
	c.once.Do(func() {
		close(c.closed)
		err = c.Conn.Close()
	})
	return err
}
