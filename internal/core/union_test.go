package core

import "testing"

func TestUnionLookupOrder(t *testing.T) {
	w := NewWorld()
	top, bottom := NewContext(), NewContext()
	eTop, eBottom, eOnly := w.NewObject("top"), w.NewObject("bottom"), w.NewObject("only")
	top.Bind("x", eTop)
	bottom.Bind("x", eBottom)
	bottom.Bind("y", eOnly)

	u := Union(top, bottom)
	if got := u.Lookup("x"); got != eTop {
		t.Fatalf("x = %v, want top layer's %v", got, eTop)
	}
	if got := u.Lookup("y"); got != eOnly {
		t.Fatalf("y = %v, want bottom layer's %v", got, eOnly)
	}
	if got := u.Lookup("z"); !got.IsUndefined() {
		t.Fatalf("z = %v", got)
	}
}

func TestUnionBindWritesTopLayer(t *testing.T) {
	w := NewWorld()
	top, bottom := NewContext(), NewContext()
	u := Union(top, bottom)
	e := w.NewObject("e")
	u.Bind("n", e)
	if top.Lookup("n") != e {
		t.Fatal("bind did not hit the top layer")
	}
	if !bottom.Lookup("n").IsUndefined() {
		t.Fatal("bind leaked to the bottom layer")
	}
}

func TestUnionUnbindRevealsLowerLayer(t *testing.T) {
	w := NewWorld()
	top, bottom := NewContext(), NewContext()
	eTop, eBottom := w.NewObject("top"), w.NewObject("bottom")
	top.Bind("x", eTop)
	bottom.Bind("x", eBottom)
	u := Union(top, bottom)
	u.Unbind("x")
	if got := u.Lookup("x"); got != eBottom {
		t.Fatalf("after unbind, x = %v, want lower layer's %v", got, eBottom)
	}
}

func TestUnionNamesAndLen(t *testing.T) {
	w := NewWorld()
	top, bottom := NewContext(), NewContext()
	top.Bind("b", w.NewObject("1"))
	top.Bind("a", w.NewObject("2"))
	bottom.Bind("b", w.NewObject("3"))
	bottom.Bind("c", w.NewObject("4"))
	u := Union(top, bottom)
	names := u.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Names = %v", names)
	}
	if u.Len() != 3 {
		t.Fatalf("Len = %d", u.Len())
	}
	if len(u.Layers()) != 2 {
		t.Fatal("Layers wrong")
	}
}

func TestUnionEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union() did not panic")
		}
	}()
	Union()
}

// A union context participates in compound-name resolution like any other
// context: a per-process overlay shadows one entry of an inherited tree.
func TestUnionInResolution(t *testing.T) {
	w := NewWorld()
	_, sharedCtx := w.NewContextObject("shared-root")
	bin, binCtx := w.NewContextObject("bin")
	ls := w.NewObject("ls")
	sharedCtx.Bind("bin", bin)
	binCtx.Bind("ls", ls)

	overlay := NewContext()
	myBin, myBinCtx := w.NewContextObject("my-bin")
	myLs := w.NewObject("my-ls")
	myBinCtx.Bind("ls", myLs)
	overlay.Bind("bin", myBin)

	u := Union(overlay, sharedCtx)
	got, err := w.Resolve(u, ParsePath("bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	if got != myLs {
		t.Fatalf("overlay not consulted first: %v", got)
	}
	// Names not in the overlay fall through to the shared tree.
	overlay.Unbind("bin")
	got, err = w.Resolve(u, ParsePath("bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	if got != ls {
		t.Fatalf("fall-through broken: %v", got)
	}
}
