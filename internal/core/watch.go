package core

// WatchedContext wraps a Context and invokes a callback after every
// mutation. Schemes use it to propagate binding changes — for example, the
// name server bumps its revision (invalidating coherent client caches)
// when any watched directory of its exported tree changes.
type WatchedContext struct {
	inner    Context
	onChange func(Name, Entity)
}

var _ Context = (*WatchedContext)(nil)

// Watch wraps inner so that every Bind and Unbind invokes onChange with
// the name and its new binding (Undefined after Unbind). The callback runs
// synchronously after the mutation; it must not mutate the same context.
func Watch(inner Context, onChange func(Name, Entity)) *WatchedContext {
	return &WatchedContext{inner: inner, onChange: onChange}
}

// Unwrap returns the wrapped context.
func (c *WatchedContext) Unwrap() Context { return c.inner }

// Lookup implements Context.
func (c *WatchedContext) Lookup(n Name) Entity { return c.inner.Lookup(n) }

// Bind implements Context, notifying the watcher.
func (c *WatchedContext) Bind(n Name, e Entity) {
	c.inner.Bind(n, e)
	c.onChange(n, e)
}

// Unbind implements Context, notifying the watcher.
func (c *WatchedContext) Unbind(n Name) {
	c.inner.Unbind(n)
	c.onChange(n, Undefined)
}

// Names implements Context.
func (c *WatchedContext) Names() []Name { return c.inner.Names() }

// Len implements Context.
func (c *WatchedContext) Len() int { return c.inner.Len() }

// WatchReachable wraps the context of every context object reachable from
// root (including root itself, if it is a context object) with the given
// callback, and returns how many contexts were wrapped. Context objects
// created or attached afterwards are not watched — call again to cover
// them. Already-watched contexts are not double-wrapped.
func (w *World) WatchReachable(root Entity, onChange func(Name, Entity)) int {
	wrapped := 0
	for id := range w.Reachable(root) {
		e := Entity{ID: id, Kind: KindObject}
		if !w.Exists(e) {
			continue
		}
		ctx, ok := w.ContextOf(e)
		if !ok {
			continue
		}
		if _, already := ctx.(*WatchedContext); already {
			continue
		}
		if err := w.SetState(e, Watch(ctx, onChange)); err == nil {
			wrapped++
		}
	}
	return wrapped
}
