package core

import "sort"

// UnionContext is an ordered union of contexts, after Plan 9's union
// directories: Lookup consults the layers in order and the first binding
// wins. Mutations go to the first layer (the "writable" layer by
// convention). Per-process naming schemes use unions to overlay a local
// tree on an inherited one without copying.
type UnionContext struct {
	layers []Context
}

var _ Context = (*UnionContext)(nil)

// Union builds a union context over the given layers (earlier layers
// shadow later ones). At least one layer is required; Union panics on an
// empty layer list, as that would be an unusable context.
func Union(layers ...Context) *UnionContext {
	if len(layers) == 0 {
		panic("core: Union requires at least one layer")
	}
	ls := make([]Context, len(layers))
	copy(ls, layers)
	return &UnionContext{layers: ls}
}

// Lookup implements Context: first layer with a binding wins.
func (u *UnionContext) Lookup(n Name) Entity {
	for _, l := range u.layers {
		if e := l.Lookup(n); !e.IsUndefined() {
			return e
		}
	}
	return Undefined
}

// Bind implements Context, writing to the first layer.
func (u *UnionContext) Bind(n Name, e Entity) {
	u.layers[0].Bind(n, e)
}

// Unbind implements Context, removing from the first layer only. A binding
// in a lower layer becomes visible again — union semantics, not deletion.
func (u *UnionContext) Unbind(n Name) {
	u.layers[0].Unbind(n)
}

// Names implements Context: the sorted union of all layers' names.
func (u *UnionContext) Names() []Name {
	seen := make(map[Name]bool)
	var out []Name
	for _, l := range u.layers {
		for _, n := range l.Names() {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len implements Context: the number of distinct bound names.
func (u *UnionContext) Len() int { return len(u.Names()) }

// Layers returns the union's layers in shadowing order.
func (u *UnionContext) Layers() []Context {
	out := make([]Context, len(u.layers))
	copy(out, u.layers)
	return out
}
