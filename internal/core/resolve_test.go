package core

import (
	"errors"
	"testing"
)

// buildTree constructs the canonical test naming graph:
//
//	root ── "usr" ──> usr ── "bin" ──> bin ── "ls" ──> ls (plain object)
//	root ── "etc" ──> etc
//	root ── "self" ─> act (an activity)
func buildTree(t *testing.T) (w *World, rootCtx *BasicContext, entities map[string]Entity) {
	t.Helper()
	w = NewWorld()
	root, rootCtx := w.NewContextObject("root")
	usr, usrCtx := w.NewContextObject("usr")
	bin, binCtx := w.NewContextObject("bin")
	etc, _ := w.NewContextObject("etc")
	ls := w.NewObject("ls")
	act := w.NewActivity("act")

	rootCtx.Bind("usr", usr)
	rootCtx.Bind("etc", etc)
	rootCtx.Bind("self", act)
	usrCtx.Bind("bin", bin)
	binCtx.Bind("ls", ls)

	entities = map[string]Entity{
		"root": root, "usr": usr, "bin": bin, "etc": etc, "ls": ls, "act": act,
	}
	return w, rootCtx, entities
}

func TestResolveSimpleName(t *testing.T) {
	w, rootCtx, ents := buildTree(t)
	got, err := w.Resolve(rootCtx, PathOf("usr"))
	if err != nil {
		t.Fatal(err)
	}
	if got != ents["usr"] {
		t.Fatalf("Resolve(usr) = %v, want %v", got, ents["usr"])
	}
}

func TestResolveCompoundName(t *testing.T) {
	w, rootCtx, ents := buildTree(t)
	tests := []struct {
		give string
		want Entity
	}{
		{give: "usr/bin", want: ents["bin"]},
		{give: "usr/bin/ls", want: ents["ls"]},
		{give: "etc", want: ents["etc"]},
		{give: "self", want: ents["act"]},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := w.Resolve(rootCtx, ParsePath(tt.give))
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("Resolve(%q) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestResolveNotFound(t *testing.T) {
	w, rootCtx, _ := buildTree(t)
	got, err := w.Resolve(rootCtx, ParsePath("usr/missing/x"))
	if !got.IsUndefined() {
		t.Fatalf("result = %v, want undefined", got)
	}
	var nf *NotFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("err = %v, want NotFoundError", err)
	}
	if nf.Depth != 1 || nf.Path[nf.Depth] != "missing" {
		t.Fatalf("NotFoundError = %+v", nf)
	}
}

func TestResolveThroughNonContext(t *testing.T) {
	w, rootCtx, ents := buildTree(t)
	// "ls" is a plain object; resolving past it must fail with
	// NotContextError (the paper's σ(c(n1)) ∉ C case).
	got, err := w.Resolve(rootCtx, ParsePath("usr/bin/ls/deeper"))
	if !got.IsUndefined() {
		t.Fatalf("result = %v, want undefined", got)
	}
	var nc *NotContextError
	if !errors.As(err, &nc) {
		t.Fatalf("err = %v, want NotContextError", err)
	}
	if nc.Entity != ents["ls"] || nc.Depth != 2 {
		t.Fatalf("NotContextError = %+v", nc)
	}
}

func TestResolveThroughActivityFails(t *testing.T) {
	w, rootCtx, _ := buildTree(t)
	// Activities have no context state here, so resolution cannot continue
	// through them.
	_, err := w.Resolve(rootCtx, ParsePath("self/x"))
	var nc *NotContextError
	if !errors.As(err, &nc) {
		t.Fatalf("err = %v, want NotContextError", err)
	}
}

func TestResolveEmptyPath(t *testing.T) {
	w, rootCtx, _ := buildTree(t)
	_, err := w.Resolve(rootCtx, nil)
	if !errors.Is(err, ErrEmptyPath) {
		t.Fatalf("err = %v, want ErrEmptyPath", err)
	}
}

func TestResolveTrail(t *testing.T) {
	w, rootCtx, ents := buildTree(t)
	got, trail, err := w.ResolveTrail(rootCtx, ParsePath("usr/bin/ls"))
	if err != nil {
		t.Fatal(err)
	}
	if got != ents["ls"] {
		t.Fatalf("result = %v", got)
	}
	want := []Entity{ents["usr"], ents["bin"], ents["ls"]}
	if len(trail) != len(want) {
		t.Fatalf("trail = %v, want %v", trail, want)
	}
	for i := range want {
		if trail[i] != want[i] {
			t.Fatalf("trail[%d] = %v, want %v", i, trail[i], want[i])
		}
	}
}

func TestResolveTrailPartialOnFailure(t *testing.T) {
	w, rootCtx, ents := buildTree(t)
	_, trail, err := w.ResolveTrail(rootCtx, ParsePath("usr/missing"))
	if err == nil {
		t.Fatal("expected error")
	}
	if len(trail) != 1 || trail[0] != ents["usr"] {
		t.Fatalf("trail = %v, want [usr]", trail)
	}
}

func TestResolveCycleTerminates(t *testing.T) {
	w := NewWorld()
	a, aCtx := w.NewContextObject("a")
	b, bCtx := w.NewContextObject("b")
	aCtx.Bind("next", b)
	bCtx.Bind("next", a)
	// A cyclic naming graph is legal; resolution length is bounded by the
	// path length, so this must terminate.
	got, err := w.Resolve(aCtx, ParsePath("next/next/next"))
	if err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("got %v, want %v", got, b)
	}
}

func TestMustResolve(t *testing.T) {
	w, rootCtx, ents := buildTree(t)
	if got := w.MustResolve(rootCtx, ParsePath("usr/bin")); got != ents["bin"] {
		t.Fatalf("MustResolve = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustResolve on missing name did not panic")
		}
	}()
	w.MustResolve(rootCtx, ParsePath("nope"))
}

// Property: resolution is deterministic — resolving the same path twice in an
// unchanged world yields identical results.
func TestResolveDeterministic(t *testing.T) {
	w, rootCtx, _ := buildTree(t)
	paths := []string{"usr", "usr/bin", "usr/bin/ls", "etc", "missing", "usr/x"}
	for _, s := range paths {
		p := ParsePath(s)
		e1, err1 := w.Resolve(rootCtx, p)
		e2, err2 := w.Resolve(rootCtx, p)
		if e1 != e2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic resolution of %q", s)
		}
	}
}

// Property: prefix consistency — if p resolves, every proper prefix of p
// resolves, and resolving the prefix then the suffix gives the same entity.
func TestResolvePrefixConsistency(t *testing.T) {
	w, rootCtx, _ := buildTree(t)
	p := ParsePath("usr/bin/ls")
	full, _, err := w.ResolveTrail(rootCtx, p)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(p); cut++ {
		mid, err := w.Resolve(rootCtx, p[:cut])
		if err != nil {
			t.Fatalf("prefix %v failed: %v", p[:cut], err)
		}
		midCtx, ok := w.ContextOf(mid)
		if !ok {
			t.Fatalf("prefix %v not a context", p[:cut])
		}
		rest, err := w.Resolve(midCtx, p[cut:])
		if err != nil {
			t.Fatalf("suffix %v failed: %v", p[cut:], err)
		}
		if rest != full {
			t.Fatalf("split at %d: %v != %v", cut, rest, full)
		}
	}
}
