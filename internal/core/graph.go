package core

import (
	"fmt"
	"io"
	"sort"
)

// Edge is one labelled edge of the naming graph: context object From binds
// Label to entity To.
type Edge struct {
	From  Entity
	Label Name
	To    Entity
}

// Graph returns a snapshot of the naming graph: one edge per binding of
// every context object in the World. Edges are ordered by (From.ID, Label).
func (w *World) Graph() []Edge {
	w.mu.RLock()
	type node struct {
		e Entity
		c Context
	}
	nodes := make([]node, 0)
	for id, s := range w.states {
		c, ok := s.(Context)
		if !ok {
			continue
		}
		nodes = append(nodes, node{Entity{ID: id, Kind: w.kinds[id]}, c})
	}
	w.mu.RUnlock()

	sort.Slice(nodes, func(i, j int) bool { return nodes[i].e.ID < nodes[j].e.ID })
	var edges []Edge
	for _, nd := range nodes {
		for _, n := range nd.c.Names() {
			to := nd.c.Lookup(n)
			if to.IsUndefined() {
				continue
			}
			edges = append(edges, Edge{From: nd.e, Label: n, To: to})
		}
	}
	return edges
}

// Reachable returns the set of entity IDs reachable from the given entity by
// traversing naming-graph edges (including the start entity itself).
func (w *World) Reachable(from Entity) map[EntityID]bool {
	seen := map[EntityID]bool{from.ID: true}
	stack := []Entity{from}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c, ok := w.ContextOf(e)
		if !ok {
			continue
		}
		for _, n := range c.Names() {
			to := c.Lookup(n)
			if to.IsUndefined() || seen[to.ID] {
				continue
			}
			seen[to.ID] = true
			stack = append(stack, to)
		}
	}
	return seen
}

// FindPath searches the naming graph (breadth-first) for a compound name of
// length at most maxDepth that resolves from `from` to `to`. It returns the
// shortest such path, preferring lexicographically smaller labels among
// equals, and reports whether one exists.
func (w *World) FindPath(from, to Entity, maxDepth int) (Path, bool) {
	if from == to {
		return nil, true
	}
	type item struct {
		e Entity
		p Path
	}
	seen := map[EntityID]bool{from.ID: true}
	queue := []item{{from, nil}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if len(it.p) >= maxDepth {
			continue
		}
		c, ok := w.ContextOf(it.e)
		if !ok {
			continue
		}
		for _, n := range c.Names() {
			next := c.Lookup(n)
			if next.IsUndefined() {
				continue
			}
			p := it.p.Append(n)
			if next == to {
				return p, true
			}
			if seen[next.ID] {
				continue
			}
			seen[next.ID] = true
			queue = append(queue, item{next, p})
		}
	}
	return nil, false
}

// DumpGraph writes a human-readable rendering of the naming graph, one edge
// per line, using entity labels where available.
func (w *World) DumpGraph(out io.Writer) error {
	for _, e := range w.Graph() {
		fromLabel, toLabel := w.Label(e.From), w.Label(e.To)
		if _, err := fmt.Fprintf(out, "%v(%s) --%s--> %v(%s)\n",
			e.From, fromLabel, e.Label, e.To, toLabel); err != nil {
			return err
		}
	}
	return nil
}

// DumpDot writes the naming graph in Graphviz DOT format: activities as
// ellipses, context objects as folders, plain objects as boxes.
func (w *World) DumpDot(out io.Writer) error {
	if _, err := fmt.Fprintln(out, "digraph naming {"); err != nil {
		return err
	}
	seen := make(map[EntityID]bool)
	node := func(e Entity) error {
		if seen[e.ID] {
			return nil
		}
		seen[e.ID] = true
		shape := "box"
		switch {
		case e.IsActivity():
			shape = "ellipse"
		case w.IsContextObject(e):
			shape = "folder"
		}
		_, err := fmt.Fprintf(out, "  n%d [label=%q shape=%s];\n", e.ID, w.Label(e), shape)
		return err
	}
	for _, edge := range w.Graph() {
		if err := node(edge.From); err != nil {
			return err
		}
		if err := node(edge.To); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(out, "  n%d -> n%d [label=%q];\n",
			edge.From.ID, edge.To.ID, string(edge.Label)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(out, "}")
	return err
}
