package core

import "testing"

func TestWatchedContextNotifies(t *testing.T) {
	w := NewWorld()
	e := w.NewObject("e")
	var gotName Name
	var gotEnt Entity
	calls := 0
	c := Watch(NewContext(), func(n Name, ent Entity) {
		gotName, gotEnt = n, ent
		calls++
	})

	c.Bind("x", e)
	if calls != 1 || gotName != "x" || gotEnt != e {
		t.Fatalf("after bind: calls=%d name=%q ent=%v", calls, gotName, gotEnt)
	}
	if c.Lookup("x") != e || c.Len() != 1 || len(c.Names()) != 1 {
		t.Fatal("delegation broken")
	}
	c.Unbind("x")
	if calls != 2 || !gotEnt.IsUndefined() {
		t.Fatalf("after unbind: calls=%d ent=%v", calls, gotEnt)
	}
	if c.Unwrap() == nil {
		t.Fatal("Unwrap returned nil")
	}
}

func TestWatchedContextResolvesNormally(t *testing.T) {
	w := NewWorld()
	dir, dirCtx := w.NewContextObject("dir")
	leaf := w.NewObject("leaf")
	dirCtx.Bind("leaf", leaf)

	// Replace the directory's state with a watched wrapper; resolution
	// still works through it.
	if err := w.SetState(dir, Watch(dirCtx, func(Name, Entity) {})); err != nil {
		t.Fatal(err)
	}
	root := NewContext()
	root.Bind("dir", dir)
	got, err := w.Resolve(root, ParsePath("dir/leaf"))
	if err != nil {
		t.Fatal(err)
	}
	if got != leaf {
		t.Fatalf("got %v", got)
	}
}

func TestWatchReachable(t *testing.T) {
	w := NewWorld()
	root, rootCtx := w.NewContextObject("root")
	sub, subCtx := w.NewContextObject("sub")
	leaf := w.NewObject("leaf")
	rootCtx.Bind("sub", sub)
	subCtx.Bind("leaf", leaf)

	changes := 0
	wrapped := w.WatchReachable(root, func(Name, Entity) { changes++ })
	if wrapped != 2 {
		t.Fatalf("wrapped = %d, want 2 (root and sub)", wrapped)
	}

	// Mutating either directory now notifies.
	subWatched, _ := w.ContextOf(sub)
	subWatched.Bind("extra", leaf)
	rootWatched, _ := w.ContextOf(root)
	rootWatched.Unbind("sub")
	if changes != 2 {
		t.Fatalf("changes = %d, want 2", changes)
	}

	// Idempotent: nothing is double-wrapped. (sub is now unreachable from
	// root after the unbind, so re-watch from sub directly.)
	if again := w.WatchReachable(sub, func(Name, Entity) {}); again != 0 {
		t.Fatalf("re-wrap = %d, want 0", again)
	}
}

func TestWatchReachableSkipsActivitiesAndFiles(t *testing.T) {
	w := NewWorld()
	root, rootCtx := w.NewContextObject("root")
	rootCtx.Bind("act", w.NewActivity("a"))
	file := w.NewObject("f")
	if err := w.SetState(file, "payload"); err != nil {
		t.Fatal(err)
	}
	rootCtx.Bind("file", file)
	if wrapped := w.WatchReachable(root, func(Name, Entity) {}); wrapped != 1 {
		t.Fatalf("wrapped = %d, want 1 (only root)", wrapped)
	}
}
