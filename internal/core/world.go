package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// State is the model's S: the state σ(e) of an entity. Object states that
// implement Context make the object a context object; any other value is
// opaque to the model. A nil State is the undefined state ⊥S.
type State interface{}

// GroupID identifies a replica group within a World. Zero means "no group".
type GroupID uint64

// World holds the sets of the naming model: entities (with kind, label and
// state) and replica groups. It is the σ function of the paper — the global
// state of the system — plus entity identity. A World is safe for concurrent
// use.
type World struct {
	mu        sync.RWMutex
	nextID    EntityID
	nextGroup GroupID
	kinds     map[EntityID]Kind
	labels    map[EntityID]string
	states    map[EntityID]State
	group     map[EntityID]GroupID
	members   map[GroupID][]EntityID
}

// ErrUnknownEntity is returned for operations on entities the World does not
// contain (including the undefined entity).
var ErrUnknownEntity = errors.New("unknown entity")

// ErrUnknownGroup is returned for operations on replica groups the World
// does not contain.
var ErrUnknownGroup = errors.New("unknown replica group")

// NewWorld returns an empty World.
func NewWorld() *World {
	return &World{
		kinds:   make(map[EntityID]Kind),
		labels:  make(map[EntityID]string),
		states:  make(map[EntityID]State),
		group:   make(map[EntityID]GroupID),
		members: make(map[GroupID][]EntityID),
	}
}

func (w *World) newEntity(kind Kind, label string) Entity {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextID++
	id := w.nextID
	w.kinds[id] = kind
	w.labels[id] = label
	return Entity{ID: id, Kind: kind}
}

// NewActivity creates an activity (an active entity, e.g. a process).
func (w *World) NewActivity(label string) Entity {
	return w.newEntity(KindActivity, label)
}

// NewObject creates an object (a passive entity, e.g. a file).
func (w *World) NewObject(label string) Entity {
	return w.newEntity(KindObject, label)
}

// NewContextObject creates an object whose state is a fresh context — the
// model's directory. It returns both the entity and its context.
func (w *World) NewContextObject(label string) (Entity, *BasicContext) {
	e := w.newEntity(KindObject, label)
	c := NewContext()
	w.mu.Lock()
	w.states[e.ID] = c
	w.mu.Unlock()
	return e, c
}

// Exists reports whether the entity belongs to this World.
func (w *World) Exists(e Entity) bool {
	if e.IsUndefined() {
		return false
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	k, ok := w.kinds[e.ID]
	return ok && k == e.Kind
}

// SetState sets σ(e). Setting a Context state turns an object into a context
// object. Activities may also carry state; the model keeps SA and SO
// disjoint only conceptually.
func (w *World) SetState(e Entity, s State) error {
	if !w.Exists(e) {
		return fmt.Errorf("set state of %v: %w", e, ErrUnknownEntity)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if s == nil {
		delete(w.states, e.ID)
		return nil
	}
	w.states[e.ID] = s
	return nil
}

// State returns σ(e), or nil (⊥S) if the entity has no state or is unknown.
func (w *World) State(e Entity) State {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.states[e.ID]
}

// ContextOf returns the entity's state as a context, if it is one. Only
// entities whose state is a Context participate in compound-name resolution.
func (w *World) ContextOf(e Entity) (Context, bool) {
	s := w.State(e)
	c, ok := s.(Context)
	return c, ok
}

// IsContextObject reports whether e is an object whose state is a context.
func (w *World) IsContextObject(e Entity) bool {
	if !e.IsObject() {
		return false
	}
	_, ok := w.ContextOf(e)
	return ok
}

// Label returns the debug label given at creation (or set later).
func (w *World) Label(e Entity) string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.labels[e.ID]
}

// SetLabel replaces the entity's debug label.
func (w *World) SetLabel(e Entity, label string) error {
	if !w.Exists(e) {
		return fmt.Errorf("set label of %v: %w", e, ErrUnknownEntity)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.labels[e.ID] = label
	return nil
}

// EntityCount returns the number of entities in the World.
func (w *World) EntityCount() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.kinds)
}

// Entities returns all entities, ordered by ID.
func (w *World) Entities() []Entity {
	w.mu.RLock()
	out := make([]Entity, 0, len(w.kinds))
	for id, k := range w.kinds {
		out = append(out, Entity{ID: id, Kind: k})
	}
	w.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NewReplicaGroup registers a replica group: a set of objects o1..og whose
// states are kept equal by the system (σ(o1) = … = σ(og) in every legal
// state). Weak coherence (§5) is defined relative to these groups.
func (w *World) NewReplicaGroup(members ...Entity) (GroupID, error) {
	for _, m := range members {
		if !w.Exists(m) {
			return 0, fmt.Errorf("replica group member %v: %w", m, ErrUnknownEntity)
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextGroup++
	g := w.nextGroup
	for _, m := range members {
		w.group[m.ID] = g
		w.members[g] = append(w.members[g], m.ID)
	}
	return g, nil
}

// AddReplica adds an entity to an existing replica group.
func (w *World) AddReplica(g GroupID, e Entity) error {
	if !w.Exists(e) {
		return fmt.Errorf("add replica %v: %w", e, ErrUnknownEntity)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.members[g]; !ok {
		return fmt.Errorf("add replica to group %d: %w", g, ErrUnknownGroup)
	}
	w.group[e.ID] = g
	w.members[g] = append(w.members[g], e.ID)
	return nil
}

// ReplicaGroup returns the group the entity belongs to, if any.
func (w *World) ReplicaGroup(e Entity) (GroupID, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	g, ok := w.group[e.ID]
	return g, ok
}

// SameReplica reports whether a and b denote the same entity or replicas of
// the same replicated object — the agreement relation of weak coherence.
func (w *World) SameReplica(a, b Entity) bool {
	if a == b {
		return !a.IsUndefined()
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	ga, oka := w.group[a.ID]
	gb, okb := w.group[b.ID]
	return oka && okb && ga == gb
}
