package core

import (
	"strings"
	"testing"
)

func TestGraphSnapshot(t *testing.T) {
	w, _, ents := buildTree(t)
	edges := w.Graph()
	// 5 bindings in buildTree: usr, etc, self from root; bin from usr; ls from bin.
	if len(edges) != 5 {
		t.Fatalf("len(edges) = %d, want 5", len(edges))
	}
	found := false
	for _, e := range edges {
		if e.From == ents["usr"] && e.Label == "bin" && e.To == ents["bin"] {
			found = true
		}
	}
	if !found {
		t.Fatal("missing edge usr --bin--> bin")
	}
}

func TestGraphOrdering(t *testing.T) {
	w, _, _ := buildTree(t)
	edges := w.Graph()
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a.From.ID > b.From.ID {
			t.Fatal("edges not ordered by From.ID")
		}
		if a.From.ID == b.From.ID && a.Label > b.Label {
			t.Fatal("edges not ordered by Label within a node")
		}
	}
}

func TestReachable(t *testing.T) {
	w, _, ents := buildTree(t)
	seen := w.Reachable(ents["root"])
	for _, name := range []string{"root", "usr", "bin", "etc", "ls", "act"} {
		if !seen[ents[name].ID] {
			t.Errorf("%s not reachable from root", name)
		}
	}
	fromBin := w.Reachable(ents["bin"])
	if fromBin[ents["root"].ID] {
		t.Error("root should not be reachable from bin")
	}
	if !fromBin[ents["ls"].ID] {
		t.Error("ls should be reachable from bin")
	}
}

func TestReachableWithCycle(t *testing.T) {
	w := NewWorld()
	a, aCtx := w.NewContextObject("a")
	b, bCtx := w.NewContextObject("b")
	aCtx.Bind("b", b)
	bCtx.Bind("a", a)
	seen := w.Reachable(a)
	if !seen[a.ID] || !seen[b.ID] {
		t.Fatal("cycle members not all reachable")
	}
}

func TestFindPath(t *testing.T) {
	w, _, ents := buildTree(t)
	tests := []struct {
		name     string
		from, to Entity
		want     string
		ok       bool
	}{
		{name: "root to ls", from: ents["root"], to: ents["ls"], want: "usr/bin/ls", ok: true},
		{name: "root to bin", from: ents["root"], to: ents["bin"], want: "usr/bin", ok: true},
		{name: "self", from: ents["root"], to: ents["root"], want: "", ok: true},
		{name: "no path", from: ents["bin"], to: ents["etc"], ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, ok := w.FindPath(tt.from, tt.to, 10)
			if ok != tt.ok {
				t.Fatalf("ok = %v, want %v", ok, tt.ok)
			}
			if ok && p.String() != tt.want {
				t.Fatalf("path = %q, want %q", p, tt.want)
			}
		})
	}
}

func TestFindPathDepthLimit(t *testing.T) {
	w, _, ents := buildTree(t)
	if _, ok := w.FindPath(ents["root"], ents["ls"], 2); ok {
		t.Fatal("found a path longer than the depth limit")
	}
	if _, ok := w.FindPath(ents["root"], ents["ls"], 3); !ok {
		t.Fatal("did not find path of exactly the depth limit")
	}
}

func TestDumpGraph(t *testing.T) {
	w, _, _ := buildTree(t)
	var sb strings.Builder
	if err := w.DumpGraph(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "--usr-->") || !strings.Contains(out, "(root)") {
		t.Fatalf("unexpected dump:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 5 {
		t.Fatalf("dump has %d lines, want 5", got)
	}
}

func TestDumpDot(t *testing.T) {
	w, _, _ := buildTree(t)
	var sb strings.Builder
	if err := w.DumpDot(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph naming {", "shape=folder", "shape=box", "shape=ellipse", `label="usr"`, "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	// Each node declared exactly once.
	if strings.Count(out, `label="root"`) != 1 {
		t.Fatalf("root declared more than once:\n%s", out)
	}
}
