package core

import (
	"errors"
	"testing"
)

func TestWorldEntityCreation(t *testing.T) {
	w := NewWorld()
	a := w.NewActivity("proc")
	o := w.NewObject("file")
	d, c := w.NewContextObject("dir")

	if !a.IsActivity() || a.IsObject() {
		t.Errorf("activity kind wrong: %v", a)
	}
	if !o.IsObject() || o.IsActivity() {
		t.Errorf("object kind wrong: %v", o)
	}
	if !w.IsContextObject(d) {
		t.Error("NewContextObject did not produce a context object")
	}
	if w.IsContextObject(o) {
		t.Error("plain object reported as context object")
	}
	if c == nil {
		t.Fatal("nil context returned")
	}
	if w.EntityCount() != 3 {
		t.Errorf("EntityCount = %d, want 3", w.EntityCount())
	}
	if got := w.Label(a); got != "proc" {
		t.Errorf("Label = %q, want %q", got, "proc")
	}
}

func TestWorldIDsUnique(t *testing.T) {
	w := NewWorld()
	seen := make(map[EntityID]bool)
	for i := 0; i < 100; i++ {
		e := w.NewObject("o")
		if seen[e.ID] {
			t.Fatalf("duplicate entity ID %d", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestWorldExists(t *testing.T) {
	w := NewWorld()
	a := w.NewActivity("a")
	if !w.Exists(a) {
		t.Error("created entity does not exist")
	}
	if w.Exists(Undefined) {
		t.Error("undefined entity exists")
	}
	if w.Exists(Entity{ID: 9999, Kind: KindObject}) {
		t.Error("foreign entity exists")
	}
	// Wrong kind for a real ID must not exist either.
	if w.Exists(Entity{ID: a.ID, Kind: KindObject}) {
		t.Error("kind-mismatched entity exists")
	}
}

func TestWorldState(t *testing.T) {
	w := NewWorld()
	o := w.NewObject("file")
	if s := w.State(o); s != nil {
		t.Errorf("fresh object state = %v, want nil", s)
	}
	if err := w.SetState(o, "payload"); err != nil {
		t.Fatal(err)
	}
	if s := w.State(o); s != "payload" {
		t.Errorf("State = %v, want payload", s)
	}
	if _, ok := w.ContextOf(o); ok {
		t.Error("opaque state reported as context")
	}
	if err := w.SetState(o, nil); err != nil {
		t.Fatal(err)
	}
	if s := w.State(o); s != nil {
		t.Errorf("cleared state = %v, want nil", s)
	}
	if err := w.SetState(Undefined, "x"); !errors.Is(err, ErrUnknownEntity) {
		t.Errorf("SetState(undefined) err = %v, want ErrUnknownEntity", err)
	}
}

func TestWorldSetStateToContextMakesContextObject(t *testing.T) {
	w := NewWorld()
	o := w.NewObject("becomes-dir")
	c := NewContext()
	if err := w.SetState(o, c); err != nil {
		t.Fatal(err)
	}
	got, ok := w.ContextOf(o)
	if !ok || got != Context(c) {
		t.Fatal("state-as-context not retrievable")
	}
}

func TestWorldLabels(t *testing.T) {
	w := NewWorld()
	o := w.NewObject("old")
	if err := w.SetLabel(o, "new"); err != nil {
		t.Fatal(err)
	}
	if got := w.Label(o); got != "new" {
		t.Errorf("Label = %q, want new", got)
	}
	if err := w.SetLabel(Undefined, "x"); !errors.Is(err, ErrUnknownEntity) {
		t.Errorf("SetLabel(undefined) err = %v", err)
	}
}

func TestWorldEntitiesOrdered(t *testing.T) {
	w := NewWorld()
	for i := 0; i < 10; i++ {
		w.NewObject("o")
	}
	es := w.Entities()
	if len(es) != 10 {
		t.Fatalf("len(Entities) = %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].ID >= es[i].ID {
			t.Fatal("Entities not ordered by ID")
		}
	}
}

func TestReplicaGroups(t *testing.T) {
	w := NewWorld()
	bin1 := w.NewObject("bin@m1")
	bin2 := w.NewObject("bin@m2")
	other := w.NewObject("other")

	g, err := w.NewReplicaGroup(bin1, bin2)
	if err != nil {
		t.Fatal(err)
	}
	if !w.SameReplica(bin1, bin2) {
		t.Error("replicas not same-replica")
	}
	if w.SameReplica(bin1, other) {
		t.Error("unrelated entity same-replica")
	}
	if !w.SameReplica(other, other) {
		t.Error("identity not same-replica")
	}
	if w.SameReplica(Undefined, Undefined) {
		t.Error("undefined should not be same-replica with itself")
	}

	bin3 := w.NewObject("bin@m3")
	if err := w.AddReplica(g, bin3); err != nil {
		t.Fatal(err)
	}
	if !w.SameReplica(bin1, bin3) {
		t.Error("added replica not same-replica")
	}
	gotG, ok := w.ReplicaGroup(bin3)
	if !ok || gotG != g {
		t.Errorf("ReplicaGroup = (%v, %v), want (%v, true)", gotG, ok, g)
	}
}

func TestReplicaGroupErrors(t *testing.T) {
	w := NewWorld()
	o := w.NewObject("o")
	if _, err := w.NewReplicaGroup(o, Undefined); !errors.Is(err, ErrUnknownEntity) {
		t.Errorf("NewReplicaGroup err = %v, want ErrUnknownEntity", err)
	}
	if err := w.AddReplica(42, o); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("AddReplica err = %v, want ErrUnknownGroup", err)
	}
	if err := w.AddReplica(1, Undefined); !errors.Is(err, ErrUnknownEntity) {
		t.Errorf("AddReplica(undefined) err = %v, want ErrUnknownEntity", err)
	}
}

func TestDistinctReplicaGroupsDoNotMix(t *testing.T) {
	w := NewWorld()
	a1, a2 := w.NewObject("a1"), w.NewObject("a2")
	b1, b2 := w.NewObject("b1"), w.NewObject("b2")
	if _, err := w.NewReplicaGroup(a1, a2); err != nil {
		t.Fatal(err)
	}
	if _, err := w.NewReplicaGroup(b1, b2); err != nil {
		t.Fatal(err)
	}
	if w.SameReplica(a1, b1) {
		t.Error("members of distinct groups reported same-replica")
	}
}
