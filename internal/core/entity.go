package core

import "strconv"

// EntityID identifies an entity within a World. ID 0 is reserved for the
// undefined entity (the model's ⊥E).
type EntityID uint64

// Kind classifies an entity as an activity (active) or an object (passive).
type Kind uint8

// Entity kinds. KindUndefined is the kind of the undefined entity only.
const (
	KindUndefined Kind = iota
	KindActivity
	KindObject
)

// String returns a short human-readable kind tag.
func (k Kind) String() string {
	switch k {
	case KindActivity:
		return "activity"
	case KindObject:
		return "object"
	default:
		return "undefined"
	}
}

// Entity denotes an element of the model's entity set E = A ∪ O ∪ {⊥E}.
// The zero Entity is the undefined entity ⊥E, which every context maps
// unbound names to (contexts are total functions in the model).
type Entity struct {
	ID   EntityID
	Kind Kind
}

// Undefined is the undefined entity ⊥E.
var Undefined Entity

// IsUndefined reports whether e is the undefined entity.
func (e Entity) IsUndefined() bool { return e.ID == 0 }

// IsActivity reports whether e is an activity.
func (e Entity) IsActivity() bool { return e.Kind == KindActivity && e.ID != 0 }

// IsObject reports whether e is an object.
func (e Entity) IsObject() bool { return e.Kind == KindObject && e.ID != 0 }

// String renders the entity as a compact tag such as "a12" or "o7"; the
// undefined entity renders as "undef".
func (e Entity) String() string {
	switch {
	case e.IsUndefined():
		return "undef"
	case e.Kind == KindActivity:
		return "a" + strconv.FormatUint(uint64(e.ID), 10)
	default:
		return "o" + strconv.FormatUint(uint64(e.ID), 10)
	}
}
