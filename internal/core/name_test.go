package core

import (
	"testing"
	"testing/quick"
)

func TestParsePath(t *testing.T) {
	tests := []struct {
		give string
		want Path
	}{
		{give: "a/b/c", want: Path{"a", "b", "c"}},
		{give: "/a/b/c", want: Path{"a", "b", "c"}},
		{give: "a", want: Path{"a"}},
		{give: "", want: Path{}},
		{give: "/", want: Path{}},
		{give: "//a//b/", want: Path{"a", "b"}},
		{give: "a/./b", want: Path{"a", ".", "b"}},
		{give: "../x", want: Path{"..", "x"}},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got := ParsePath(tt.give)
			if !got.Equal(tt.want) {
				t.Fatalf("ParsePath(%q) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestSplitPathString(t *testing.T) {
	tests := []struct {
		give    string
		wantAbs bool
		want    Path
	}{
		{give: "/a/b", wantAbs: true, want: Path{"a", "b"}},
		{give: "a/b", wantAbs: false, want: Path{"a", "b"}},
		{give: "/", wantAbs: true, want: Path{}},
		{give: "", wantAbs: false, want: Path{}},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			abs, p := SplitPathString(tt.give)
			if abs != tt.wantAbs || !p.Equal(tt.want) {
				t.Fatalf("SplitPathString(%q) = (%v, %v), want (%v, %v)",
					tt.give, abs, p, tt.wantAbs, tt.want)
			}
		})
	}
}

func TestPathString(t *testing.T) {
	tests := []struct {
		give Path
		want string
	}{
		{give: Path{"a", "b"}, want: "a/b"},
		{give: Path{"x"}, want: "x"},
		{give: Path{}, want: ""},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Path(%v).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestPathJoinAppendClone(t *testing.T) {
	p := PathOf("a", "b")
	q := p.Join(PathOf("c"))
	if !q.Equal(Path{"a", "b", "c"}) {
		t.Fatalf("Join = %v", q)
	}
	r := p.Append("d", "e")
	if !r.Equal(Path{"a", "b", "d", "e"}) {
		t.Fatalf("Append = %v", r)
	}
	c := p.Clone()
	c[0] = "z"
	if p[0] != "a" {
		t.Fatal("Clone aliases the original")
	}
}

func TestPathIsValid(t *testing.T) {
	tests := []struct {
		give Path
		want bool
	}{
		{give: Path{"a"}, want: true},
		{give: Path{"a", "b"}, want: true},
		{give: Path{}, want: false},
		{give: nil, want: false},
		{give: Path{"a", ""}, want: false},
	}
	for _, tt := range tests {
		if got := tt.give.IsValid(); got != tt.want {
			t.Errorf("Path(%v).IsValid() = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestPathHasPrefix(t *testing.T) {
	p := PathOf("a", "b", "c")
	tests := []struct {
		give Path
		want bool
	}{
		{give: Path{"a"}, want: true},
		{give: Path{"a", "b"}, want: true},
		{give: Path{"a", "b", "c"}, want: true},
		{give: Path{"a", "b", "c", "d"}, want: false},
		{give: Path{"b"}, want: false},
		{give: nil, want: true},
	}
	for _, tt := range tests {
		if got := p.HasPrefix(tt.give); got != tt.want {
			t.Errorf("HasPrefix(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

// Property: parsing the rendering of a valid path is the identity, as long as
// no component contains the separator.
func TestPathStringParseRoundTrip(t *testing.T) {
	f := func(parts []string) bool {
		p := make(Path, 0, len(parts))
		for _, s := range parts {
			if s == "" {
				s = "x"
			}
			clean := make([]rune, 0, len(s))
			for _, r := range s {
				if r != '/' {
					clean = append(clean, r)
				}
			}
			if len(clean) == 0 {
				clean = []rune{'x'}
			}
			p = append(p, Name(clean))
		}
		return ParsePath(p.String()).Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
