package core

import "strings"

// Name is a simple (atomic) name. The model places no structure on simple
// names; schemes built on the model give particular names (such as "/" or
// "..") conventional meanings.
type Name string

// Path is a compound name: a sequence of simple names resolved by recursion
// through context objects. A valid Path is non-empty and contains no empty
// components.
type Path []Name

// Separator is the conventional textual separator between the components of
// a compound name.
const Separator = "/"

// ParsePath splits a textual compound name on Separator, dropping empty
// components. Whether the text was absolute (began with the separator) is
// a scheme-level notion; use SplitPathString to preserve it.
func ParsePath(s string) Path {
	parts := strings.Split(s, Separator)
	p := make(Path, 0, len(parts))
	for _, part := range parts {
		if part == "" {
			continue
		}
		p = append(p, Name(part))
	}
	return p
}

// SplitPathString parses a textual compound name and reports whether it was
// absolute (began with the separator). The interpretation of absoluteness —
// usually "resolve starting from the activity's root binding" — belongs to
// the scheme, not the model.
func SplitPathString(s string) (abs bool, p Path) {
	return strings.HasPrefix(s, Separator), ParsePath(s)
}

// PathOf builds a Path from simple name components.
func PathOf(names ...Name) Path {
	p := make(Path, len(names))
	copy(p, names)
	return p
}

// String renders the path with the conventional separator and no leading
// separator. Client caches key on it for every lookup, so it allocates at
// most once: single-component paths convert for free, longer ones build
// into one exactly-sized buffer instead of a parts slice plus a Join.
func (p Path) String() string {
	switch len(p) {
	case 0:
		return ""
	case 1:
		return string(p[0])
	}
	size := (len(p) - 1) * len(Separator)
	for _, n := range p {
		size += len(n)
	}
	var b strings.Builder
	b.Grow(size)
	b.WriteString(string(p[0]))
	for _, n := range p[1:] {
		b.WriteString(Separator)
		b.WriteString(string(n))
	}
	return b.String()
}

// Clone returns an independent copy of the path.
func (p Path) Clone() Path {
	q := make(Path, len(p))
	copy(q, p)
	return q
}

// Join returns a new path consisting of p followed by q.
func (p Path) Join(q Path) Path {
	r := make(Path, 0, len(p)+len(q))
	r = append(r, p...)
	r = append(r, q...)
	return r
}

// Append returns a new path consisting of p followed by the given names.
func (p Path) Append(names ...Name) Path {
	return p.Join(Path(names))
}

// IsValid reports whether the path is a well-formed compound name: non-empty
// with no empty components.
func (p Path) IsValid() bool {
	if len(p) == 0 {
		return false
	}
	for _, n := range p {
		if n == "" {
			return false
		}
	}
	return true
}

// Equal reports whether two paths have identical components.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// HasPrefix reports whether q is a (possibly equal) prefix of p.
func (p Path) HasPrefix(q Path) bool {
	if len(q) > len(p) {
		return false
	}
	return p[:len(q)].Equal(q)
}
