// Package core implements the formal naming model of Radia & Pachl,
// "Coherence in Naming in Distributed Computing Environments" (ICDCS 1993).
//
// The model distinguishes active entities (activities) from passive entities
// (objects). Entities are denoted by names; a name is always resolved in a
// context, which is a function from names to entities. An object whose state
// is a context is a context object (the model's analogue of a directory), and
// compound names resolve by recursion through context objects. The bindings
// of all context objects form the naming graph.
//
// A World holds the sets of the model: entities, their kinds and states,
// and replica groups (used by the paper's notion of weak coherence). All
// higher layers — closure rules, coherence measurement, and the concrete
// naming schemes the paper analyses — are built on this package.
package core
