package core

import (
	"errors"
	"fmt"
)

// ErrEmptyPath is returned when resolving an empty compound name.
var ErrEmptyPath = errors.New("empty compound name")

// NotFoundError reports that a component of a compound name was unbound in
// the context it was resolved in (the resolution reached ⊥E).
type NotFoundError struct {
	Path  Path // the full compound name being resolved
	Depth int  // index of the unbound component
}

// Error implements error.
func (e *NotFoundError) Error() string {
	return fmt.Sprintf("name %q not bound (component %d of %q)",
		e.Path[e.Depth], e.Depth, e.Path)
}

// NotContextError reports that an intermediate component of a compound name
// resolved to an entity whose state is not a context, so resolution cannot
// continue (the paper's "σ(c(n1)) ∉ C" case).
type NotContextError struct {
	Entity Entity // the non-context entity
	Path   Path   // the full compound name being resolved
	Depth  int    // index of the component that resolved to Entity
}

// Error implements error.
func (e *NotContextError) Error() string {
	return fmt.Sprintf("%v (component %d of %q) is not a context object",
		e.Entity, e.Depth, e.Path)
}

// Resolve resolves the compound name p in context c following the paper's
// recursive definition:
//
//	c(n1…nk) = σ(c(n1))(n2…nk)  when σ(c(n1)) ∈ C, and ⊥E otherwise.
//
// It returns the denoted entity, or Undefined together with a *NotFoundError
// or *NotContextError describing where resolution failed.
//
// The loop deliberately duplicates ResolveTrail rather than delegating to
// it: this is the server's per-request resolution path, and the trail —
// which that variant must heap-allocate to return — would be built and
// discarded on every wire resolve. Only the failure branches allocate,
// constructing their errors.
func (w *World) Resolve(c Context, p Path) (Entity, error) {
	if len(p) == 0 {
		return Undefined, ErrEmptyPath
	}
	cur := c
	for i, n := range p {
		e := cur.Lookup(n)
		if e.IsUndefined() {
			//namingvet:allocfree-exempt -- cold: failed resolution constructs its error
			return Undefined, &NotFoundError{Path: p.Clone(), Depth: i}
		}
		if i == len(p)-1 {
			return e, nil
		}
		next, ok := w.ContextOf(e)
		if !ok {
			//namingvet:allocfree-exempt -- cold: failed resolution constructs its error
			return Undefined, &NotContextError{Entity: e, Path: p.Clone(), Depth: i}
		}
		cur = next
	}
	// Unreachable: the loop returns on the last component.
	return Undefined, ErrEmptyPath
}

// ResolveTrail resolves p in c and additionally returns the trail of
// entities denoted by each successive prefix of p (trail[i] = c(n1…n_{i+1})).
// The trail of a successful resolution has len(p) entries and ends with the
// result. On failure the trail contains the entities resolved so far.
//
// The trail records the access path through the naming graph; closure rules
// that depend on where a name was obtained (such as the Algol-scoped R(file)
// rule of §6) search it.
func (w *World) ResolveTrail(c Context, p Path) (Entity, []Entity, error) {
	if len(p) == 0 {
		return Undefined, nil, ErrEmptyPath
	}
	trail := make([]Entity, 0, len(p))
	cur := c
	for i, n := range p {
		e := cur.Lookup(n)
		if e.IsUndefined() {
			return Undefined, trail, &NotFoundError{Path: p.Clone(), Depth: i}
		}
		trail = append(trail, e)
		if i == len(p)-1 {
			return e, trail, nil
		}
		next, ok := w.ContextOf(e)
		if !ok {
			return Undefined, trail, &NotContextError{Entity: e, Path: p.Clone(), Depth: i}
		}
		cur = next
	}
	// Unreachable: the loop returns on the last component.
	return Undefined, trail, ErrEmptyPath
}

// MustResolve resolves p in c and panics on failure. It is intended for
// scheme construction code and tests where the binding is known to exist.
func (w *World) MustResolve(c Context, p Path) Entity {
	e, err := w.Resolve(c, p)
	if err != nil {
		panic(fmt.Sprintf("must resolve %q: %v", p, err))
	}
	return e
}
