package core

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestContextBindLookup(t *testing.T) {
	w := NewWorld()
	f := w.NewObject("f")
	c := NewContext()

	if got := c.Lookup("x"); !got.IsUndefined() {
		t.Fatalf("unbound lookup = %v, want undefined", got)
	}
	c.Bind("x", f)
	if got := c.Lookup("x"); got != f {
		t.Fatalf("lookup after bind = %v, want %v", got, f)
	}
	c.Unbind("x")
	if got := c.Lookup("x"); !got.IsUndefined() {
		t.Fatalf("lookup after unbind = %v, want undefined", got)
	}
}

func TestContextBindUndefinedIsUnbind(t *testing.T) {
	w := NewWorld()
	f := w.NewObject("f")
	c := NewContext()
	c.Bind("x", f)
	c.Bind("x", Undefined)
	if c.Len() != 0 {
		t.Fatalf("Len = %d after binding to undefined, want 0", c.Len())
	}
}

func TestContextNamesSorted(t *testing.T) {
	w := NewWorld()
	c := NewContext()
	for _, n := range []Name{"zebra", "apple", "mango"} {
		c.Bind(n, w.NewObject(string(n)))
	}
	got := c.Names()
	want := []Name{"apple", "mango", "zebra"}
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

func TestContextClone(t *testing.T) {
	w := NewWorld()
	a, b := w.NewObject("a"), w.NewObject("b")
	c := NewContext()
	c.Bind("x", a)

	d := c.Clone()
	if !EqualBindings(c, d) {
		t.Fatal("clone does not equal original")
	}
	d.Bind("x", b)
	if c.Lookup("x") != a {
		t.Fatal("mutating clone changed original")
	}
	if EqualBindings(c, d) {
		t.Fatal("contexts should now differ")
	}
}

func TestEqualBindings(t *testing.T) {
	w := NewWorld()
	a, b := w.NewObject("a"), w.NewObject("b")
	tests := []struct {
		name string
		setA func(Context)
		setB func(Context)
		want bool
	}{
		{name: "empty", setA: func(Context) {}, setB: func(Context) {}, want: true},
		{
			name: "same",
			setA: func(c Context) { c.Bind("x", a) },
			setB: func(c Context) { c.Bind("x", a) },
			want: true,
		},
		{
			name: "different entity",
			setA: func(c Context) { c.Bind("x", a) },
			setB: func(c Context) { c.Bind("x", b) },
			want: false,
		},
		{
			name: "different names",
			setA: func(c Context) { c.Bind("x", a) },
			setB: func(c Context) { c.Bind("y", a) },
			want: false,
		},
		{
			name: "subset",
			setA: func(c Context) { c.Bind("x", a); c.Bind("y", b) },
			setB: func(c Context) { c.Bind("x", a) },
			want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ca, cb := NewContext(), NewContext()
			tt.setA(ca)
			tt.setB(cb)
			if got := EqualBindings(ca, cb); got != tt.want {
				t.Fatalf("EqualBindings = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAgreeOn(t *testing.T) {
	w := NewWorld()
	a, b := w.NewObject("a"), w.NewObject("b")
	ca, cb := NewContext(), NewContext()
	ca.Bind("x", a)
	cb.Bind("x", a)
	cb.Bind("y", b)
	if !AgreeOn(ca, cb, "x") {
		t.Error("expected agreement on x")
	}
	if AgreeOn(ca, cb, "y") {
		t.Error("expected disagreement on y (bound vs unbound)")
	}
	if !AgreeOn(ca, cb, "z") {
		t.Error("expected agreement on z (both unbound map to undefined)")
	}
}

func TestContextConcurrentAccess(t *testing.T) {
	w := NewWorld()
	c := NewContext()
	e := w.NewObject("e")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := Name(rune('a' + i))
			for j := 0; j < 100; j++ {
				c.Bind(n, e)
				_ = c.Lookup(n)
				_ = c.Names()
				c.Unbind(n)
			}
		}(i)
	}
	wg.Wait()
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

// Property: after Bind(n, e), Lookup(n) returns e; after Unbind, undefined —
// for arbitrary interleavings expressed as bind lists.
func TestContextBindIsLastWriteWins(t *testing.T) {
	w := NewWorld()
	pool := make([]Entity, 8)
	for i := range pool {
		pool[i] = w.NewObject("o")
	}
	f := func(ops []uint8) bool {
		c := NewContext()
		shadow := make(map[Name]Entity)
		for _, op := range ops {
			n := Name(rune('a' + int(op%4)))
			e := pool[int(op/4)%len(pool)]
			if op%3 == 0 {
				c.Unbind(n)
				delete(shadow, n)
			} else {
				c.Bind(n, e)
				shadow[n] = e
			}
		}
		for _, n := range []Name{"a", "b", "c", "d"} {
			want, ok := shadow[n]
			got := c.Lookup(n)
			if ok && got != want {
				return false
			}
			if !ok && !got.IsUndefined() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
