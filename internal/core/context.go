package core

import (
	"sort"
	"sync"
)

// Context is the model's C = [N → E]: a function from names to entities.
// Contexts are total: Lookup returns the undefined entity for unbound names.
//
// Implementations must be safe for concurrent use; schemes mutate contexts
// while activities (goroutines) resolve through them.
type Context interface {
	// Lookup returns the entity the name is bound to, or Undefined.
	Lookup(Name) Entity
	// Bind binds name to entity, replacing any previous binding. Binding a
	// name to Undefined is equivalent to Unbind.
	Bind(Name, Entity)
	// Unbind removes the binding for name, if any.
	Unbind(Name)
	// Names returns the bound names in sorted order.
	Names() []Name
	// Len returns the number of bound names.
	Len() int
}

// BasicContext is the standard mutable Context backed by a map. The zero
// value is not usable; construct with NewContext.
type BasicContext struct {
	mu       sync.RWMutex
	bindings map[Name]Entity
}

var _ Context = (*BasicContext)(nil)

// NewContext returns an empty context.
func NewContext() *BasicContext {
	return &BasicContext{bindings: make(map[Name]Entity)}
}

// Lookup returns the entity bound to name, or Undefined.
func (c *BasicContext) Lookup(n Name) Entity {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.bindings[n]
}

// Bind binds name to entity. Binding to Undefined removes the binding, so
// that Len and Names reflect only defined bindings.
func (c *BasicContext) Bind(n Name, e Entity) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.IsUndefined() {
		delete(c.bindings, n)
		return
	}
	c.bindings[n] = e
}

// Unbind removes the binding for name.
func (c *BasicContext) Unbind(n Name) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.bindings, n)
}

// Names returns the bound names in sorted order.
func (c *BasicContext) Names() []Name {
	c.mu.RLock()
	names := make([]Name, 0, len(c.bindings))
	for n := range c.bindings {
		names = append(names, n)
	}
	c.mu.RUnlock()
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// Len returns the number of bindings.
func (c *BasicContext) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.bindings)
}

// Clone returns an independent copy of the context. Parent/child context
// inheritance (a child "inherits the context of its parent", §5.1) is
// modelled by cloning at fork time.
func (c *BasicContext) Clone() *BasicContext {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d := &BasicContext{bindings: make(map[Name]Entity, len(c.bindings))}
	for n, e := range c.bindings {
		d.bindings[n] = e
	}
	return d
}

// Snapshot returns a copy of the binding map.
func (c *BasicContext) Snapshot() map[Name]Entity {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := make(map[Name]Entity, len(c.bindings))
	for n, e := range c.bindings {
		m[n] = e
	}
	return m
}

// EqualBindings reports whether two contexts have identical binding maps.
func EqualBindings(a, b Context) bool {
	an, bn := a.Names(), b.Names()
	if len(an) != len(bn) {
		return false
	}
	for i, n := range an {
		if n != bn[i] || a.Lookup(n) != b.Lookup(n) {
			return false
		}
	}
	return true
}

// AgreeOn reports whether two contexts bind the given name to the same
// entity (both unbound counts as agreement on ⊥E).
func AgreeOn(a, b Context, n Name) bool {
	return a.Lookup(n) == b.Lookup(n)
}
