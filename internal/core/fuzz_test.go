package core

import (
	"strings"
	"testing"
)

// FuzzParsePath checks the parser's total behaviour: no panics, no empty
// components, and re-rendering round-trips for clean inputs.
func FuzzParsePath(f *testing.F) {
	for _, seed := range []string{"", "/", "a/b/c", "//a//", "..", "a/./b", "/../m1/etc"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p := ParsePath(s)
		for _, n := range p {
			if n == "" {
				t.Fatalf("empty component in %q -> %v", s, p)
			}
			if strings.Contains(string(n), Separator) {
				t.Fatalf("separator inside component %q", n)
			}
		}
		// Parse of render is identity.
		if !ParsePath(p.String()).Equal(p) {
			t.Fatalf("round-trip failed for %q: %v", s, p)
		}
		// Absoluteness detection agrees with prefix.
		abs, q := SplitPathString(s)
		if abs != strings.HasPrefix(s, Separator) || !q.Equal(p) {
			t.Fatalf("SplitPathString mismatch for %q", s)
		}
	})
}

// FuzzResolve throws arbitrary path strings at a fixed naming graph:
// resolution must never panic, and must fail or succeed consistently with
// a reference walk.
func FuzzResolve(f *testing.F) {
	for _, seed := range []string{"usr/bin/ls", "usr", "x", "usr/bin/ls/deep", "self/x", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		w := NewWorld()
		_, rootCtx := w.NewContextObject("root")
		usr, usrCtx := w.NewContextObject("usr")
		bin, binCtx := w.NewContextObject("bin")
		ls := w.NewObject("ls")
		act := w.NewActivity("act")
		rootCtx.Bind("usr", usr)
		rootCtx.Bind("self", act)
		usrCtx.Bind("bin", bin)
		binCtx.Bind("ls", ls)

		p := ParsePath(s)
		got, err := w.Resolve(rootCtx, p)

		// Reference: step component by component.
		var want Entity
		var wantErr bool
		if len(p) == 0 {
			wantErr = true
		} else {
			cur := Context(rootCtx)
			for i, n := range p {
				e := cur.Lookup(n)
				if e.IsUndefined() {
					wantErr = true
					break
				}
				if i == len(p)-1 {
					want = e
					break
				}
				next, ok := w.ContextOf(e)
				if !ok {
					wantErr = true
					break
				}
				cur = next
			}
		}
		if wantErr {
			if err == nil {
				t.Fatalf("resolve %q succeeded (%v), reference failed", s, got)
			}
			if !got.IsUndefined() {
				t.Fatalf("failed resolve returned defined entity %v", got)
			}
			return
		}
		if err != nil || got != want {
			t.Fatalf("resolve %q = (%v, %v), want %v", s, got, err, want)
		}
	})
}
