// Package netsim provides the simulated network substrate: hierarchically
// addressed endpoints (network, machine, local), message delivery, network
// partitions, and the machine/network renumbering events that §6 Example 1
// of the paper studies ("when the address of a machine or a network is
// changed as part of relocation or reconfiguration").
//
// The simulation is deterministic: mailboxes are queues, not goroutines, so
// experiments control interleaving explicitly. Blocking receives are
// provided for scenarios that do want goroutine-per-process concurrency.
package netsim
