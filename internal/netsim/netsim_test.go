package netsim

import (
	"errors"
	"sync"
	"testing"
)

func TestAddrString(t *testing.T) {
	a := Addr{Net: 1, Mach: 2, Local: 3}
	if got := a.String(); got != "(1,2,3)" {
		t.Fatalf("String = %q", got)
	}
}

func TestAddrIsComplete(t *testing.T) {
	tests := []struct {
		give Addr
		want bool
	}{
		{Addr{1, 2, 3}, true},
		{Addr{0, 2, 3}, false},
		{Addr{1, 0, 3}, false},
		{Addr{1, 2, 0}, false},
		{Addr{}, false},
	}
	for _, tt := range tests {
		if got := tt.give.IsComplete(); got != tt.want {
			t.Errorf("%v.IsComplete() = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRegisterAndSend(t *testing.T) {
	n := NewNetwork()
	a := Addr{1, 1, 1}
	b := Addr{1, 1, 2}
	epA, err := n.Register(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(b); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(b, a, "hello"); err != nil {
		t.Fatal(err)
	}
	m, ok := epA.TryRecv()
	if !ok {
		t.Fatal("no message")
	}
	if m.Payload != "hello" || m.From != b || m.To != a {
		t.Fatalf("message = %+v", m)
	}
	if _, ok := epA.TryRecv(); ok {
		t.Fatal("spurious second message")
	}
}

func TestRegisterErrors(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Register(Addr{0, 1, 1}); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v, want ErrIncomplete", err)
	}
	a := Addr{1, 1, 1}
	if _, err := n.Register(a); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(a); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestSendUnreachable(t *testing.T) {
	n := NewNetwork()
	if err := n.Send(Addr{1, 1, 1}, Addr{1, 1, 9}, "x"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	st := n.Stats()
	if st.Sent != 1 || st.Dropped != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := NewNetwork()
	a := Addr{1, 1, 1}
	b := Addr{2, 1, 1}
	if _, err := n.Register(a); err != nil {
		t.Fatal(err)
	}
	epB, err := n.Register(b)
	if err != nil {
		t.Fatal(err)
	}

	n.Partition(1, 2)
	if err := n.Send(a, b, "x"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
	// Reverse direction also severed.
	if err := n.Send(b, a, "x"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("reverse err = %v, want ErrPartitioned", err)
	}

	n.Heal(2, 1) // order-insensitive
	if err := n.Send(a, b, "y"); err != nil {
		t.Fatal(err)
	}
	if m, ok := epB.TryRecv(); !ok || m.Payload != "y" {
		t.Fatal("message not delivered after heal")
	}
}

func TestIntraNetworkUnaffectedByPartition(t *testing.T) {
	n := NewNetwork()
	a := Addr{1, 1, 1}
	b := Addr{1, 2, 1}
	if _, err := n.Register(a); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(b); err != nil {
		t.Fatal(err)
	}
	n.Partition(1, 2)
	if err := n.Send(a, b, "x"); err != nil {
		t.Fatalf("intra-network send failed: %v", err)
	}
}

func TestRecvBlockingAndClose(t *testing.T) {
	n := NewNetwork()
	a := Addr{1, 1, 1}
	ep, err := n.Register(a)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var got Message
	var recvErr error
	go func() {
		defer wg.Done()
		got, recvErr = ep.Recv()
	}()
	if err := n.Send(Addr{1, 1, 2}, a, 42); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if recvErr != nil || got.Payload != 42 {
		t.Fatalf("Recv = %+v, %v", got, recvErr)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, recvErr = ep.Recv()
	}()
	ep.Close()
	wg.Wait()
	if !errors.Is(recvErr, ErrClosed) {
		t.Fatalf("Recv after close = %v, want ErrClosed", recvErr)
	}
	if n.EndpointCount() != 0 {
		t.Fatal("endpoint still registered after close")
	}
}

func TestRenumberMachine(t *testing.T) {
	n := NewNetwork()
	a1 := Addr{1, 5, 1}
	a2 := Addr{1, 5, 2}
	other := Addr{1, 6, 1}
	ep1, err := n.Register(a1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(a2); err != nil {
		t.Fatal(err)
	}
	epOther, err := n.Register(other)
	if err != nil {
		t.Fatal(err)
	}

	moved, err := n.RenumberMachine(1, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 {
		t.Fatalf("moved = %d, want 2", moved)
	}
	if got := ep1.Addr(); got != (Addr{1, 7, 1}) {
		t.Fatalf("endpoint addr = %v", got)
	}
	if got := epOther.Addr(); got != other {
		t.Fatal("unrelated endpoint renumbered")
	}

	// Stale address no longer reachable; new one is.
	if err := n.Send(other, a1, "stale"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("stale send err = %v, want ErrUnreachable", err)
	}
	if err := n.Send(other, Addr{1, 7, 1}, "fresh"); err != nil {
		t.Fatal(err)
	}
	if m, ok := ep1.TryRecv(); !ok || m.Payload != "fresh" {
		t.Fatal("fresh address did not deliver")
	}
}

func TestRenumberMachineErrors(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Register(Addr{1, 5, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(Addr{1, 7, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RenumberMachine(1, 5, 7); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("collision err = %v, want ErrDuplicate", err)
	}
	if _, err := n.RenumberMachine(1, 99, 100); !errors.Is(err, ErrNoSuchTarget) {
		t.Fatalf("missing err = %v, want ErrNoSuchTarget", err)
	}
}

func TestRenumberNetwork(t *testing.T) {
	n := NewNetwork()
	ep, err := n.Register(Addr{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(Addr{2, 1, 1}); err != nil {
		t.Fatal(err)
	}
	moved, err := n.RenumberNetwork(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("moved = %d", moved)
	}
	if got := ep.Addr(); got != (Addr{3, 1, 1}) {
		t.Fatalf("addr = %v", got)
	}
	if _, err := n.RenumberNetwork(3, 2); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("collision err = %v", err)
	}
	if _, err := n.RenumberNetwork(99, 100); !errors.Is(err, ErrNoSuchTarget) {
		t.Fatalf("missing err = %v", err)
	}
}

func TestPendingCount(t *testing.T) {
	n := NewNetwork()
	a := Addr{1, 1, 1}
	ep, err := n.Register(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := n.Send(Addr{1, 1, 2}, a, i); err != nil {
			t.Fatal(err)
		}
	}
	if ep.Pending() != 3 {
		t.Fatalf("Pending = %d", ep.Pending())
	}
	// FIFO order.
	for i := 0; i < 3; i++ {
		m, ok := ep.TryRecv()
		if !ok || m.Payload != i {
			t.Fatalf("message %d = %+v", i, m)
		}
	}
}

func TestStatsCounts(t *testing.T) {
	n := NewNetwork()
	a := Addr{1, 1, 1}
	if _, err := n.Register(a); err != nil {
		t.Fatal(err)
	}
	_ = n.Send(a, a, "ok")
	_ = n.Send(a, Addr{1, 1, 9}, "drop")
	st := n.Stats()
	if st.Sent != 2 || st.Delivered != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
