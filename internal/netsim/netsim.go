package netsim

import (
	"errors"
	"fmt"
	"sync"
)

// Addr is a hierarchical process address: network, machine and local
// component. The zero value of a component means "unspecified" in partially
// qualified identifiers; a routable address has all three components
// non-zero.
type Addr struct {
	Net, Mach, Local uint32
}

// String renders the address as "(n,m,l)".
func (a Addr) String() string {
	return fmt.Sprintf("(%d,%d,%d)", a.Net, a.Mach, a.Local)
}

// IsComplete reports whether all three components are specified.
func (a Addr) IsComplete() bool {
	return a.Net != 0 && a.Mach != 0 && a.Local != 0
}

// Message is a payload in flight between two endpoints.
type Message struct {
	// From and To are the addresses the message was sent between. From
	// reflects the sender's address at send time.
	From, To Addr
	// Payload is the message body.
	Payload any
}

// Errors returned by network operations.
var (
	ErrUnreachable  = errors.New("address unreachable")
	ErrPartitioned  = errors.New("networks partitioned")
	ErrDuplicate    = errors.New("address already registered")
	ErrIncomplete   = errors.New("address incomplete")
	ErrClosed       = errors.New("endpoint closed")
	ErrNoSuchTarget = errors.New("no endpoints matched")
)

// Endpoint is a registered receiver with a mailbox. Its address may change
// while registered (renumbering); Addr always returns the current one.
type Endpoint struct {
	net *Network

	mu     sync.Mutex
	cond   *sync.Cond
	addr   Addr
	queue  []Message
	closed bool
}

// Addr returns the endpoint's current address.
func (e *Endpoint) Addr() Addr {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.addr
}

func (e *Endpoint) deliver(m Message) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.queue = append(e.queue, m)
	e.cond.Signal()
}

// TryRecv dequeues the next message without blocking.
func (e *Endpoint) TryRecv() (Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.queue) == 0 {
		return Message{}, false
	}
	m := e.queue[0]
	e.queue = e.queue[1:]
	return m, true
}

// Recv blocks until a message arrives or the endpoint is closed.
func (e *Endpoint) Recv() (Message, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.queue) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.queue) == 0 {
		return Message{}, ErrClosed
	}
	m := e.queue[0]
	e.queue = e.queue[1:]
	return m, nil
}

// Pending returns the number of queued messages.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// Close closes the endpoint and unregisters it from the network; blocked
// receivers return ErrClosed.
func (e *Endpoint) Close() {
	e.net.unregister(e)
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Stats counts network traffic.
type Stats struct {
	Sent, Delivered, Dropped int
}

// Network is the registry and router for endpoints.
type Network struct {
	mu         sync.Mutex
	endpoints  map[Addr]*Endpoint
	partitions map[[2]uint32]bool // unordered pair of network ids, stored ordered
	stats      Stats
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		endpoints:  make(map[Addr]*Endpoint),
		partitions: make(map[[2]uint32]bool),
	}
}

// Register creates an endpoint at the given (complete) address.
func (n *Network) Register(a Addr) (*Endpoint, error) {
	if !a.IsComplete() {
		return nil, fmt.Errorf("register %v: %w", a, ErrIncomplete)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.endpoints[a]; ok {
		return nil, fmt.Errorf("register %v: %w", a, ErrDuplicate)
	}
	e := &Endpoint{net: n, addr: a}
	e.cond = sync.NewCond(&e.mu)
	n.endpoints[a] = e
	return e, nil
}

func (n *Network) unregister(e *Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, e.Addr())
}

// Lookup returns the endpoint at a, if any.
func (n *Network) Lookup(a Addr) (*Endpoint, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.endpoints[a]
	return e, ok
}

func pairKey(a, b uint32) [2]uint32 {
	if a > b {
		a, b = b, a
	}
	return [2]uint32{a, b}
}

// Partition severs delivery between two network ids (both directions).
func (n *Network) Partition(netA, netB uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[pairKey(netA, netB)] = true
}

// Heal restores delivery between two network ids.
func (n *Network) Heal(netA, netB uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, pairKey(netA, netB))
}

// Send routes a payload from `from` to `to`. Delivery fails with
// ErrUnreachable if no endpoint is registered at `to`, or ErrPartitioned if
// the two networks are partitioned. Failed sends count as dropped.
func (n *Network) Send(from, to Addr, payload any) error {
	n.mu.Lock()
	n.stats.Sent++
	if from.Net != to.Net && n.partitions[pairKey(from.Net, to.Net)] {
		n.stats.Dropped++
		n.mu.Unlock()
		return fmt.Errorf("send %v->%v: %w", from, to, ErrPartitioned)
	}
	ep, ok := n.endpoints[to]
	if !ok {
		n.stats.Dropped++
		n.mu.Unlock()
		return fmt.Errorf("send %v->%v: %w", from, to, ErrUnreachable)
	}
	n.stats.Delivered++
	n.mu.Unlock()

	ep.deliver(Message{From: from, To: to, Payload: payload})
	return nil
}

// RenumberMachine changes machine oldMach on network netID to newMach,
// rewriting the addresses of all its endpoints. It returns the number of
// endpoints moved. This is the paper's "address of a machine is changed as
// part of relocation or reconfiguration": afterwards, stale fully qualified
// addresses no longer reach the machine.
func (n *Network) RenumberMachine(netID, oldMach, newMach uint32) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var moved []*Endpoint
	for a := range n.endpoints {
		if a.Net == netID && a.Mach == newMach {
			return 0, fmt.Errorf("renumber machine %d->%d: %w", oldMach, newMach, ErrDuplicate)
		}
	}
	for a, ep := range n.endpoints {
		if a.Net == netID && a.Mach == oldMach {
			moved = append(moved, ep)
			delete(n.endpoints, a)
		}
	}
	if len(moved) == 0 {
		return 0, fmt.Errorf("renumber machine %d on net %d: %w", oldMach, netID, ErrNoSuchTarget)
	}
	for _, ep := range moved {
		ep.mu.Lock()
		ep.addr.Mach = newMach
		a := ep.addr
		ep.mu.Unlock()
		n.endpoints[a] = ep
	}
	return len(moved), nil
}

// RenumberNetwork changes network id oldNet to newNet for all endpoints and
// returns how many moved.
func (n *Network) RenumberNetwork(oldNet, newNet uint32) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for a := range n.endpoints {
		if a.Net == newNet {
			return 0, fmt.Errorf("renumber network %d->%d: %w", oldNet, newNet, ErrDuplicate)
		}
	}
	var moved []*Endpoint
	for a, ep := range n.endpoints {
		if a.Net == oldNet {
			moved = append(moved, ep)
			delete(n.endpoints, a)
		}
	}
	if len(moved) == 0 {
		return 0, fmt.Errorf("renumber network %d: %w", oldNet, ErrNoSuchTarget)
	}
	for _, ep := range moved {
		ep.mu.Lock()
		ep.addr.Net = newNet
		a := ep.addr
		ep.mu.Unlock()
		n.endpoints[a] = ep
	}
	return len(moved), nil
}

// Stats returns a snapshot of traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// EndpointCount returns the number of registered endpoints.
func (n *Network) EndpointCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.endpoints)
}
