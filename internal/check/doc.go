// Package check is an fsck for naming graphs: it scans a World (or a
// subtree) for structural findings — bindings to entities the world does
// not contain, entities unreachable from a root, inconsistent parent
// links, and cycles.
//
// Cycles are legal in the model (the paper's naming graph is an arbitrary
// directed graph), so they are reported as informational findings rather
// than errors; dangling bindings are always defects.
package check
