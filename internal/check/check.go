package check

import (
	"fmt"
	"sort"
	"strings"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

// Severity classifies findings.
type Severity int

// Severities.
const (
	// Info findings are legal but noteworthy (cycles, shared subtrees).
	Info Severity = iota + 1
	// Warn findings usually indicate scheme bugs (parent-link mismatch).
	Warn
	// Error findings are model violations (dangling bindings).
	Error
)

// String returns the severity tag.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return "unknown"
	}
}

// Finding is one checker result.
type Finding struct {
	// Severity classifies the finding.
	Severity Severity
	// Code is a stable machine-readable tag.
	Code string
	// Detail is the human-readable description.
	Detail string
}

// String renders the finding.
func (f Finding) String() string {
	return fmt.Sprintf("%s[%s]: %s", f.Severity, f.Code, f.Detail)
}

// Report is the set of findings from one run.
type Report struct {
	// Findings in detection order.
	Findings []Finding
}

// add appends a finding.
func (r *Report) add(sev Severity, code, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{
		Severity: sev,
		Code:     code,
		Detail:   fmt.Sprintf(format, args...),
	})
}

// Count returns the number of findings at the given severity.
func (r *Report) Count(sev Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == sev {
			n++
		}
	}
	return n
}

// OK reports whether the run produced no Error findings.
func (r *Report) OK() bool { return r.Count(Error) == 0 }

// String renders all findings, one per line.
func (r *Report) String() string {
	if len(r.Findings) == 0 {
		return "clean"
	}
	lines := make([]string, len(r.Findings))
	for i, f := range r.Findings {
		lines[i] = f.String()
	}
	return strings.Join(lines, "\n")
}

// World scans every context object in the world for dangling bindings and
// reports cycles among context objects.
func World(w *core.World) *Report {
	r := &Report{}
	edges := w.Graph()
	for _, e := range edges {
		if !w.Exists(e.To) {
			r.add(Error, "dangling-binding",
				"%v binds %q to unknown entity %v", e.From, e.Label, e.To)
		}
	}
	for _, cyc := range findCycles(w, edges) {
		r.add(Info, "cycle", "cycle through %s", cyc)
	}
	return r
}

// Tree scans a tree: World checks restricted to the subtree, plus
// reachability accounting and parent-link validation when the tree carries
// parent links.
func Tree(tr *dirtree.Tree) *Report {
	r := &Report{}
	w := tr.W
	reach := w.Reachable(tr.Root)

	// Dangling bindings within the subtree.
	for _, e := range w.Graph() {
		if !reach[e.From.ID] {
			continue
		}
		if !w.Exists(e.To) {
			r.add(Error, "dangling-binding",
				"%v binds %q to unknown entity %v", e.From, e.Label, e.To)
		}
	}

	// Parent links: every directory's ".." must point at a directory that
	// binds it back under some name (or at itself, for roots).
	tr.Walk(func(p core.Path, e core.Entity) bool {
		ctx, ok := w.ContextOf(e)
		if !ok {
			return true
		}
		parent := ctx.Lookup(dirtree.ParentName)
		if parent.IsUndefined() {
			if tr.ParentLinks {
				r.add(Warn, "missing-parent-link", "directory /%s has no %q", p, dirtree.ParentName)
			}
			return true
		}
		if parent == e {
			return true // self-parented root convention
		}
		parentCtx, ok := w.ContextOf(parent)
		if !ok {
			r.add(Warn, "parent-not-directory", "/%s's parent %v is not a directory", p, parent)
			return true
		}
		for _, n := range parentCtx.Names() {
			if parentCtx.Lookup(n) == e {
				return true
			}
		}
		r.add(Warn, "orphaned-parent-link",
			"/%s's parent %v does not bind it back (stale after a move or multi-attach)", p, parent)
		return true
	})

	// Sharing: entities reachable by more than one path are legal but
	// noteworthy (they are what makes "the" path of an entity ambiguous).
	pathsOf := make(map[core.EntityID][]string)
	countShared := 0
	var walkAll func(prefix core.Path, e core.Entity, depth int)
	seenOnPath := make(map[core.EntityID]bool)
	walkAll = func(prefix core.Path, e core.Entity, depth int) {
		if depth > 16 || seenOnPath[e.ID] {
			return
		}
		seenOnPath[e.ID] = true
		defer delete(seenOnPath, e.ID)
		ctx, ok := w.ContextOf(e)
		if !ok {
			return
		}
		for _, n := range ctx.Names() {
			if n == dirtree.ParentName {
				continue
			}
			child := ctx.Lookup(n)
			if child.IsUndefined() {
				continue
			}
			childPath := prefix.Append(n)
			pathsOf[child.ID] = append(pathsOf[child.ID], childPath.String())
			walkAll(childPath, child, depth+1)
		}
	}
	walkAll(nil, tr.Root, 0)
	var sharedIDs []core.EntityID
	for id, paths := range pathsOf {
		if len(paths) > 1 {
			sharedIDs = append(sharedIDs, id)
			countShared++
		}
	}
	sort.Slice(sharedIDs, func(i, j int) bool { return sharedIDs[i] < sharedIDs[j] })
	for _, id := range sharedIDs {
		paths := pathsOf[id]
		sort.Strings(paths)
		r.add(Info, "shared-entity", "entity o%d reachable as /%s", id, strings.Join(paths, " and /"))
	}
	return r
}

// findCycles returns a representative description for each strongly
// connected component of size > 1 (or with a self-loop) among context
// objects.
func findCycles(w *core.World, edges []core.Edge) []string {
	adj := make(map[core.EntityID][]core.EntityID)
	for _, e := range edges {
		if w.IsContextObject(e.To) {
			adj[e.From.ID] = append(adj[e.From.ID], e.To.ID)
		}
	}
	// Tarjan's strongly connected components, iteratively indexed.
	index := make(map[core.EntityID]int)
	low := make(map[core.EntityID]int)
	onStack := make(map[core.EntityID]bool)
	var stack []core.EntityID
	var cycles []string
	next := 0

	var strongconnect func(v core.EntityID)
	strongconnect = func(v core.EntityID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, to := range adj[v] {
			if _, seen := index[to]; !seen {
				strongconnect(to)
				if low[to] < low[v] {
					low[v] = low[to]
				}
			} else if onStack[to] && index[to] < low[v] {
				low[v] = index[to]
			}
		}
		if low[v] == index[v] {
			var comp []core.EntityID
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, top)
				if top == v {
					break
				}
			}
			selfLoop := false
			for _, to := range adj[v] {
				if to == v {
					selfLoop = true
				}
			}
			if len(comp) > 1 || selfLoop {
				sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
				parts := make([]string, len(comp))
				for i, id := range comp {
					parts[i] = fmt.Sprintf("o%d(%s)", id, w.Label(core.Entity{ID: id, Kind: core.KindObject}))
				}
				cycles = append(cycles, strings.Join(parts, " -> "))
			}
		}
	}
	var roots []core.EntityID
	for v := range adj {
		roots = append(roots, v)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, v := range roots {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return cycles
}
