package check

import (
	"strings"
	"testing"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
)

func TestWorldClean(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	if _, err := tr.Create(core.ParsePath("a/b"), "x"); err != nil {
		t.Fatal(err)
	}
	r := World(w)
	if !r.OK() || len(r.Findings) != 0 {
		t.Fatalf("clean world reported: %s", r)
	}
	if r.String() != "clean" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestWorldDanglingBinding(t *testing.T) {
	w := core.NewWorld()
	_, ctx := w.NewContextObject("dir")
	// Bind to an entity of a different world — a dangling reference.
	foreign := core.Entity{ID: 9999, Kind: core.KindObject}
	ctx.Bind("ghost", foreign)
	r := World(w)
	if r.OK() {
		t.Fatal("dangling binding not detected")
	}
	if r.Count(Error) != 1 {
		t.Fatalf("errors = %d", r.Count(Error))
	}
	if !strings.Contains(r.String(), "dangling-binding") {
		t.Fatalf("report: %s", r)
	}
}

func TestWorldCycleReported(t *testing.T) {
	w := core.NewWorld()
	a, aCtx := w.NewContextObject("a")
	b, bCtx := w.NewContextObject("b")
	aCtx.Bind("b", b)
	bCtx.Bind("a", a)
	r := World(w)
	if !r.OK() {
		t.Fatalf("cycle should not be an error: %s", r)
	}
	if r.Count(Info) != 1 {
		t.Fatalf("info = %d, report: %s", r.Count(Info), r)
	}
	if !strings.Contains(r.String(), "cycle") {
		t.Fatalf("report: %s", r)
	}
}

func TestWorldSelfLoopReported(t *testing.T) {
	w := core.NewWorld()
	d, ctx := w.NewContextObject("d")
	ctx.Bind("self", d)
	r := World(w)
	if r.Count(Info) != 1 {
		t.Fatalf("self-loop not reported: %s", r)
	}
}

func TestTreeParentLinks(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.NewWithParentLinks(w, "root")
	if _, err := tr.MkdirAll(core.ParsePath("a/b")); err != nil {
		t.Fatal(err)
	}
	r := Tree(tr)
	if !r.OK() || r.Count(Warn) != 0 {
		t.Fatalf("well-formed parent links reported: %s", r)
	}
}

func TestTreeOrphanedParentLink(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.NewWithParentLinks(w, "root")
	sub, err := tr.Mkdir(nil, "sub")
	if err != nil {
		t.Fatal(err)
	}
	// Break the invariant by hand: point sub's ".." at an unrelated dir.
	other, _ := w.NewContextObject("other")
	subCtx, _ := w.ContextOf(sub)
	subCtx.Bind(dirtree.ParentName, other)
	r := Tree(tr)
	if r.Count(Warn) == 0 || !strings.Contains(r.String(), "orphaned-parent-link") {
		t.Fatalf("orphaned parent link not detected: %s", r)
	}
}

func TestTreeMissingParentLink(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.NewWithParentLinks(w, "root")
	sub, err := tr.Mkdir(nil, "sub")
	if err != nil {
		t.Fatal(err)
	}
	subCtx, _ := w.ContextOf(sub)
	subCtx.Unbind(dirtree.ParentName)
	r := Tree(tr)
	if !strings.Contains(r.String(), "missing-parent-link") {
		t.Fatalf("missing parent link not detected: %s", r)
	}
}

func TestTreeParentNotDirectory(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.NewWithParentLinks(w, "root")
	sub, err := tr.Mkdir(nil, "sub")
	if err != nil {
		t.Fatal(err)
	}
	file, err := tr.Create(core.ParsePath("f"), "x")
	if err != nil {
		t.Fatal(err)
	}
	subCtx, _ := w.ContextOf(sub)
	subCtx.Bind(dirtree.ParentName, file)
	r := Tree(tr)
	if !strings.Contains(r.String(), "parent-not-directory") {
		t.Fatalf("bad parent not detected: %s", r)
	}
}

func TestTreeSharedEntityReported(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root")
	f, err := tr.Create(core.ParsePath("a/file"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MkdirAll(core.PathOf("b")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach(core.PathOf("b"), "alias", f); err != nil {
		t.Fatal(err)
	}
	r := Tree(tr)
	if !strings.Contains(r.String(), "shared-entity") {
		t.Fatalf("sharing not reported: %s", r)
	}
	if !r.OK() {
		t.Fatalf("sharing must not be an error: %s", r)
	}
}

func TestSeverityStrings(t *testing.T) {
	if Info.String() != "info" || Warn.String() != "warn" || Error.String() != "error" {
		t.Fatal("severity strings wrong")
	}
	if Severity(0).String() != "unknown" {
		t.Fatal("zero severity string wrong")
	}
}

func TestTreeWithoutParentLinksNoWarnings(t *testing.T) {
	w := core.NewWorld()
	tr := dirtree.New(w, "root") // no parent links
	if _, err := tr.MkdirAll(core.ParsePath("a/b/c")); err != nil {
		t.Fatal(err)
	}
	r := Tree(tr)
	if r.Count(Warn) != 0 {
		t.Fatalf("plain tree warned: %s", r)
	}
}
