package integration

import (
	"testing"

	"namecoherence/internal/cas"
	"namecoherence/internal/cluster"
	"namecoherence/internal/core"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/snapstore"
)

const recoverySpec = `
dir /usr/bin
file /usr/bin/ls "#!ls"
file /usr/bin/cat "#!cat"
file /etc/passwd "root:0:staff"
file /home/alice/notes "icdcs"
link /mnt /usr
`

// A killed-and-restarted shard recovers its full naming graph from the
// durable store and serves byte-equal canonical answers at the same
// revision: every (entity, revision) pair a client reads from one
// restored incarnation is identical in the next.
func TestKilledShardRecoversAndServesEqualAnswers(t *testing.T) {
	dir := t.TempDir()
	paths := []core.Path{
		core.ParsePath("usr/bin/ls"),
		core.ParsePath("usr/bin/cat"),
		core.ParsePath("etc/passwd"),
		core.ParsePath("mnt/bin/ls"),
		core.ParsePath("home/alice/notes"),
	}

	// First life: built from the spec; its roots are committed at
	// bring-up. Mutate one shard, commit the mutation, then die without
	// any further ceremony — the abrupt-kill path.
	openStore := func() *snapstore.Store {
		st, err := snapstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := openStore()
	w1 := core.NewWorld()
	c1, err := cluster.New(w1, recoverySpec, 2, cluster.WithSnapStore(st))
	if err != nil {
		t.Fatal(err)
	}
	home := c1.Plan.Prefixes["home"]
	if _, err := c1.Trees[home].Create(core.ParsePath("home/alice/draft"), "v2"); err != nil {
		t.Fatal(err)
	}
	wantRev := c1.Server(home).Revision() // bumped by the watched bind
	if wantRev == 0 {
		t.Fatal("mutation did not bump the watched shard revision")
	}
	root, err := c1.ShardRoot(st, home, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(home, wantRev, root); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	type answer struct {
		ent core.Entity
		rev uint64
	}
	collect := func(c *cluster.Cluster) []answer {
		t.Helper()
		routes := c.Routes()
		var out []answer
		for _, p := range paths {
			shard := routes.ShardFor(p)
			cl, err := nameserver.Dial("tcp", routes.Addrs[shard])
			if err != nil {
				t.Fatal(err)
			}
			e, rev, err := cl.ResolveRev(p)
			_ = cl.Close()
			if err != nil {
				t.Fatalf("resolve %q: %v", p, err)
			}
			out = append(out, answer{ent: e, rev: rev})
		}
		return out
	}

	// Second life: recovered from the store in a fresh world/process.
	st2 := openStore()
	w2 := core.NewWorld()
	c2, err := cluster.New(w2, recoverySpec, 2, cluster.WithSnapStore(st2))
	if err != nil {
		t.Fatal(err)
	}
	if rev, ok := c2.Recovered(home); !ok || rev != wantRev {
		t.Fatalf("Recovered(%d) = %d, %v; want %d", home, rev, ok, wantRev)
	}
	// The committed mutation survived the kill.
	if _, err := c2.Trees[home].Lookup(core.ParsePath("home/alice/draft")); err != nil {
		t.Fatalf("committed mutation lost: %v", err)
	}
	second := collect(c2)
	c2.Close()

	// Third life: every answer is byte-for-byte the second life's.
	st3 := openStore()
	w3 := core.NewWorld()
	c3, err := cluster.New(w3, recoverySpec, 2, cluster.WithSnapStore(st3))
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	third := collect(c3)
	for i := range second {
		if second[i] != third[i] {
			t.Fatalf("answer for %q drifted across restarts: %+v vs %+v",
				paths[i], second[i], third[i])
		}
	}
}

// The keeper's final flush on graceful shutdown commits the last revision:
// a mutation made while serving needs no manual commit to survive.
func TestKeeperFinalFlushCommitsLastRevision(t *testing.T) {
	dir := t.TempDir()
	st, err := snapstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWorld()
	c, err := cluster.New(w, recoverySpec, 1, cluster.WithSnapStore(st))
	if err != nil {
		t.Fatal(err)
	}
	keeper := snapstore.NewKeeper(st, 0)
	srv := c.Server(0)
	keeper.Track(0, srv.Revision, func() (h cas.Hash, rev uint64, err error) {
		rev = srv.Revision()
		h, err = c.ShardRoot(st, 0, 0)
		return h, rev, err
	})
	keeper.Start()

	if _, err := c.Trees[0].Create(core.ParsePath("etc/new"), "fresh"); err != nil {
		t.Fatal(err)
	}
	rev := srv.Revision()
	c.Close()
	if err := keeper.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the final flush left the mutated graph at the last revision.
	st2, err := snapstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	last, ok := st2.Latest(0)
	if !ok || last.Rev != rev {
		t.Fatalf("Latest(0) = %+v, %v; want rev %d", last, ok, rev)
	}
	h, err := last.RootHash()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := st2.Restore(h, core.NewWorld(), "root")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Lookup(core.ParsePath("etc/new")); err != nil {
		t.Fatalf("final-flushed mutation missing: %v", err)
	}
}
