package integration

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"namecoherence/internal/core"
	"namecoherence/internal/machine"
	"namecoherence/internal/newcastle"
)

// A soak over the whole stack: many goroutine "users" fork processes,
// resolve local and cross-machine names, and mutate their private contexts
// concurrently, while a churn goroutine creates and removes files in a
// shared spool directory. The test asserts liveness, absence of races
// (run with -race), and that stable names never resolve to the wrong
// entity.
func TestConcurrentNewcastleSoak(t *testing.T) {
	w := core.NewWorld()
	s, err := newcastle.NewSystem(w, "m1", "m2", "m3")
	if err != nil {
		t.Fatal(err)
	}
	stable := make(map[string]core.Entity)
	for _, mn := range s.MachineNames() {
		m, _ := s.Machine(mn)
		f, err := m.Tree.Create(core.ParsePath("etc/stable"), "pinned@"+mn)
		if err != nil {
			t.Fatal(err)
		}
		stable["/../"+mn+"/etc/stable"] = f
		if _, err := m.Tree.MkdirAll(core.PathOf("spool")); err != nil {
			t.Fatal(err)
		}
	}

	var wrong atomic.Int64
	var resolved atomic.Int64
	stop := make(chan struct{})
	var churnWG, userWG sync.WaitGroup

	// Churn goroutine: create/remove spool files on every machine.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			mn := s.MachineNames()[i%3]
			m, _ := s.Machine(mn)
			name := core.Name(fmt.Sprintf("job%03d", i%50))
			p := core.PathOf("spool", name)
			if _, err := m.Tree.Create(p, "x"); err != nil {
				_ = m.Tree.Detach(core.PathOf("spool"), name)
			}
			i++
		}
	}()

	// User goroutines.
	for u := 0; u < 8; u++ {
		userWG.Add(1)
		go func(u int) {
			defer userWG.Done()
			mn := s.MachineNames()[u%3]
			proc, err := s.Spawn(mn, fmt.Sprintf("user%d", u))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 300; i++ {
				// Fork a child, let it resolve, change its cwd.
				child := proc.Fork("child")
				for name, want := range stable {
					got, err := child.Resolve(name)
					if err != nil || got != want {
						wrong.Add(1)
					}
					resolved.Add(1)
				}
				// Spool names may or may not exist — both outcomes legal.
				_, _ = child.Resolve(fmt.Sprintf("/spool/job%03d", i%50))
				if home, err := proc.Resolve("/spool"); err == nil {
					child.SetCwd(home)
					_, _ = child.Resolve(fmt.Sprintf("job%03d", i%50))
				}
			}
		}(u)
	}

	// Wait for the users, then stop the churner.
	userWG.Wait()
	close(stop)
	churnWG.Wait()

	if wrong.Load() != 0 {
		t.Fatalf("%d wrong resolutions of stable names", wrong.Load())
	}
	if resolved.Load() < 8*300*3 {
		t.Fatalf("only %d stable resolutions", resolved.Load())
	}
}

// Forked machine processes mutating their contexts concurrently never
// observe each other's mutations (context copy-on-fork isolation).
func TestForkIsolationUnderConcurrency(t *testing.T) {
	w := core.NewWorld()
	m := machine.New(w, "m")
	if _, err := m.Tree.Create(core.ParsePath("d/f"), "x"); err != nil {
		t.Fatal(err)
	}
	parent := m.Spawn("parent")
	d, err := parent.Resolve("/d")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			child := parent.Fork(fmt.Sprintf("c%d", i))
			for j := 0; j < 200; j++ {
				if j%2 == 0 {
					child.SetCwd(d)
				} else {
					child.SetCwd(m.Tree.Root)
				}
				if _, err := child.Resolve("/d/f"); err != nil {
					t.Errorf("child %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	// The parent's cwd was never touched.
	if parent.Cwd() != m.Tree.Root {
		t.Fatal("parent cwd mutated by children")
	}
}
