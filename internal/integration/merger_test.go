package integration

import (
	"testing"

	"namecoherence/internal/coherence"
	"namecoherence/internal/core"
	"namecoherence/internal/embedded"
	"namecoherence/internal/exchange"
	"namecoherence/internal/federation"
	"namecoherence/internal/machine"
	"namecoherence/internal/perproc"
	"namecoherence/internal/sharedns"
)

// The organization-merger story of §7, end to end: two autonomous orgs,
// each with /users attached org-wide, federate. Verbatim name exchange is
// incoherent; a cross-link plus prefix mapping restores coherence for plain
// names; the scope rule keeps structured objects meaningful after they are
// *copied* across the boundary.
func TestOrganizationMerger(t *testing.T) {
	w := core.NewWorld()
	fed := federation.New(w)

	org1, err := sharedns.NewSystem(w, "o1c1")
	if err != nil {
		t.Fatal(err)
	}
	org2, err := sharedns.NewSystem(w, "o2c1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := org1.AttachSpace("users"); err != nil {
		t.Fatal(err)
	}
	users2, err := org2.AttachSpace("users")
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.AddSystem("org1", org1); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddSystem("org2", org2); err != nil {
		t.Fatal(err)
	}

	// org2's user bob keeps a structured report: main includes parts/data.
	if _, err := users2.Tree.Create(core.ParsePath("bob/report/parts/data"), "DATA"); err != nil {
		t.Fatal(err)
	}
	if _, err := users2.Tree.Create(core.ParsePath("bob/report/main"), "REPORT",
		core.ParsePath("parts/data")); err != nil {
		t.Fatal(err)
	}

	sender, err := org2.Spawn("o2c1", "sender")
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := org1.Spawn("o1c1", "receiver")
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: verbatim exchange fails.
	out := federation.ExchangeName(sender, receiver, "/users/bob/report/main", nil)
	if out.Coherent {
		t.Fatal("verbatim exchange unexpectedly coherent")
	}

	// Phase 2: cross-link + prefix mapping via the exchange substrate.
	if err := fed.CrossLink("org1", "org2-users", "org2", "users", "/"); err != nil {
		t.Fatal(err)
	}
	pm := federation.NewPrefixMapper()
	pm.AddRule("/users", "/org2-users")
	x := exchange.NewExchanger(&exchange.PrefixTranslator{Mapper: pm})
	a, err := x.Join(sender, "org2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := x.Join(receiver, "org1")
	if err != nil {
		t.Fatal(err)
	}
	coherent, sentName, err := x.RoundTrip(a, b, "/users/bob/report/main")
	if err != nil {
		t.Fatal(err)
	}
	if !coherent {
		t.Fatal("mapped exchange incoherent")
	}
	if sentName != "/org2-users/bob/report/main" {
		t.Fatalf("sent name = %q", sentName)
	}

	// Phase 3: the receiver assembles the report through the cross-link;
	// the embedded name resolves in the report's own scope.
	recvRoot, err := receiver.Resolve("/")
	if err != nil {
		t.Fatal(err)
	}
	_, trail, err := receiver.ResolveTrail(sentName)
	if err != nil {
		t.Fatal(err)
	}
	asm := &embedded.Assembler{World: w, Sep: "|"}
	doc, err := asm.Assemble(embedded.Chain(recvRoot, trail))
	if err != nil {
		t.Fatal(err)
	}
	if doc != "REPORT|DATA" {
		t.Fatalf("assembled = %q", doc)
	}

	// Phase 4: org1 takes a private copy of bob's report subtree into its
	// own users space; the copy is self-contained.
	c1, err := org1.Client("o1c1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Machine.Tree.MkdirAll(core.ParsePath("import")); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Machine.Tree.CopySubtree(
		core.ParsePath("org2-users/bob/report"),
		core.ParsePath("import/report")); err != nil {
		t.Fatal(err)
	}
	_, trail, err = receiver.ResolveTrail("/import/report/main")
	if err != nil {
		t.Fatal(err)
	}
	doc, err = asm.Assemble(embedded.Chain(recvRoot, trail))
	if err != nil {
		t.Fatal(err)
	}
	if doc != "REPORT|DATA" {
		t.Fatalf("copied report assembled = %q", doc)
	}
	copyData, err := receiver.Resolve("/import/report/parts/data")
	if err != nil {
		t.Fatal(err)
	}
	origData, err := sender.Resolve("/users/bob/report/parts/data")
	if err != nil {
		t.Fatal(err)
	}
	if copyData == origData {
		t.Fatal("copy shares identity with the original — not a copy")
	}
}

// Per-process namespaces compose with the machine substrate: a pipeline of
// remote executions (parent → child → grandchild across three machines)
// keeps parameter names coherent along the whole chain.
func TestRemoteExecChainCoherence(t *testing.T) {
	w := core.NewWorld()
	machines := []*machine.Machine{
		machine.New(w, "m1"), machine.New(w, "m2"), machine.New(w, "m3"),
	}
	parent, err := perproc.New(machines[0], "root-proc")
	if err != nil {
		t.Fatal(err)
	}
	proj := machines[0].Tree // reuse m1's tree as the shared subsystem
	if _, err := proj.Create(core.ParsePath("work/item"), "payload"); err != nil {
		t.Fatal(err)
	}
	if err := parent.Attach(nil, "work", mustLookup(t, w, proj, "work")); err != nil {
		t.Fatal(err)
	}

	child, err := perproc.RemoteExec(parent, machines[1], "child")
	if err != nil {
		t.Fatal(err)
	}
	grandchild, err := perproc.RemoteExec(child, machines[2], "grandchild")
	if err != nil {
		t.Fatal(err)
	}

	reg := machine.NewRegistry()
	reg.Add(parent.Process, child.Process, grandchild.Process)
	acts := []core.Entity{parent.Activity(), child.Activity(), grandchild.Activity()}
	rep := coherence.Measure(w, reg.ResolveAbs, acts,
		[]core.Path{core.ParsePath("work/item")})
	if rep.StrictDegree() != 1 {
		t.Fatalf("chain coherence = %v: %+v", rep.StrictDegree(), rep)
	}

	// Each hop's /local points at its own machine.
	for i, p := range []*perproc.Proc{parent, child, grandchild} {
		root, err := p.Resolve("/local")
		if err != nil {
			t.Fatal(err)
		}
		if root != machines[i].Tree.Root {
			t.Fatalf("hop %d /local = %v, want %v", i, root, machines[i].Tree.Root)
		}
	}
}

// mustLookup resolves a single-component path in a tree.
func mustLookup(t *testing.T, w *core.World, tr interface {
	Lookup(core.Path) (core.Entity, error)
}, name string) core.Entity {
	t.Helper()
	e, err := tr.Lookup(core.ParsePath(name))
	if err != nil {
		t.Fatal(err)
	}
	_ = w
	return e
}
