// Package integration holds cross-module scenario tests: each test wires
// several subsystems together the way a deployment of the paper's ideas
// would — Newcastle machines exchanging structured documents, shared
// naming graphs exported over the wire, federated organizations merging
// name spaces — and checks the end-to-end coherence properties.
package integration
