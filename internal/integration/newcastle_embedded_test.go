package integration

import (
	"testing"

	"namecoherence/internal/core"
	"namecoherence/internal/embedded"
	"namecoherence/internal/exchange"
	"namecoherence/internal/newcastle"
)

// A structured document lives on one Newcastle machine; a process on
// another machine reaches it through the super-root and assembles it. The
// Algol scope rule makes the assembly identical on both machines.
func TestNewcastleCrossMachineDocumentAssembly(t *testing.T) {
	w := core.NewWorld()
	s, err := newcastle.NewSystem(w, "m1", "m2")
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := s.Machine("m1")
	if _, err := m1.Tree.Create(core.ParsePath("book/ch/one"), "ONE"); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Tree.Create(core.ParsePath("book/main"), "MAIN",
		core.ParsePath("ch/one")); err != nil {
		t.Fatal(err)
	}

	assembleVia := func(p interface {
		ResolveTrail(string) (core.Entity, []core.Entity, error)
		Resolve(string) (core.Entity, error)
	}, path string) string {
		t.Helper()
		root, err := p.Resolve("/")
		if err != nil {
			t.Fatal(err)
		}
		_, trail, err := p.ResolveTrail(path)
		if err != nil {
			t.Fatalf("resolve %q: %v", path, err)
		}
		a := &embedded.Assembler{World: w, Sep: "+"}
		doc, err := a.Assemble(embedded.Chain(root, trail))
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}

	p1, _ := s.Spawn("m1", "reader1")
	p2, _ := s.Spawn("m2", "reader2")
	local := assembleVia(p1, "/book/main")
	remote := assembleVia(p2, "/../m1/book/main")
	if local != "MAIN+ONE" {
		t.Fatalf("local assembly = %q", local)
	}
	if remote != local {
		t.Fatalf("remote assembly %q != local %q", remote, local)
	}
}

// The full §5.1 story: a name travels from m1 to m2 with the Newcastle
// mapping translator; the receiver resolves it, finds a structured object,
// and its embedded names still mean what the sender meant.
func TestNewcastleExchangeThenEmbeddedResolution(t *testing.T) {
	w := core.NewWorld()
	s, err := newcastle.NewSystem(w, "m1", "m2")
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := s.Machine("m1")
	target, err := m1.Tree.Create(core.ParsePath("proj/lib/dep"), "dep")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Tree.Create(core.ParsePath("proj/src/main"), "src",
		core.ParsePath("lib/dep")); err != nil {
		t.Fatal(err)
	}

	sender, _ := s.Spawn("m1", "sender")
	receiver, _ := s.Spawn("m2", "receiver")
	x := exchange.NewExchanger(&exchange.NewcastleTranslator{System: s})
	a, err := x.Join(sender, "m1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := x.Join(receiver, "m2")
	if err != nil {
		t.Fatal(err)
	}

	if err := x.Send(a, b, "/proj/src/main"); err != nil {
		t.Fatal(err)
	}
	got, sentName, err := b.ReceiveResolve()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := sender.Resolve("/proj/src/main")
	if got != want {
		t.Fatalf("exchanged name resolves to %v, want %v", got, want)
	}

	// Now the receiver follows the embedded name inside what it received.
	recvRoot, _ := receiver.Resolve("/")
	_, trail, err := receiver.ResolveTrail(sentName)
	if err != nil {
		t.Fatal(err)
	}
	emb, _, err := embedded.Resolve(w, embedded.Chain(recvRoot, trail), core.ParsePath("lib/dep"))
	if err != nil {
		t.Fatal(err)
	}
	if emb != target {
		t.Fatalf("embedded name on receiver side = %v, want %v", emb, target)
	}
}
