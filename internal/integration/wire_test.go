package integration

import (
	"net"
	"sync"
	"testing"

	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/sharedns"
)

// An Andrew-style shared tree exported over TCP: a remote client resolving
// /usr/paper through the name server gets exactly the entity local client
// processes see at /vice/usr/paper.
func TestSharedTreeExportedOverTCP(t *testing.T) {
	w := core.NewWorld()
	s, err := sharedns.NewSystem(w, "ws1", "ws2")
	if err != nil {
		t.Fatal(err)
	}
	vice, err := s.AttachSpace(sharedns.ViceName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vice.Tree.Create(core.ParsePath("usr/paper"), "text"); err != nil {
		t.Fatal(err)
	}

	server := nameserver.NewServer(w, vice.Tree.RootContext())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		server.Serve(ln)
	}()
	defer func() {
		server.Close()
		<-done
	}()

	client, err := nameserver.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	remote, err := client.Resolve(core.ParsePath("usr/paper"))
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := s.Spawn("ws1", "local")
	local, err := p1.Resolve("/vice/usr/paper")
	if err != nil {
		t.Fatal(err)
	}
	if remote != local {
		t.Fatalf("wire resolution %v != local %v", remote, local)
	}
}

// Concurrent resolution through the whole stack while the shared tree
// churns: many client goroutines resolve over TCP with coherent caches
// while the server side rebinds names. The test asserts liveness and that
// every result is either the old or the new binding (no torn values).
func TestConcurrentChurnOverTCP(t *testing.T) {
	w := core.NewWorld()
	tr := sharednsExportTree(t, w)
	server := nameserver.NewServer(w, tr.RootContext())
	server.WatchExport(tr.Root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		server.Serve(ln)
	}()
	defer func() {
		server.Close()
		<-done
	}()

	p := core.ParsePath("dir/hot")
	old, err := tr.Lookup(p)
	if err != nil {
		t.Fatal(err)
	}
	fresh := w.NewObject("fresh")

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := nameserver.Dial("tcp", ln.Addr().String(),
				nameserver.WithCoherentCache(8))
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = client.Close() }()
			for j := 0; j < 50; j++ {
				got, err := client.Resolve(p)
				if err != nil {
					errs <- err
					return
				}
				if got != old && got != fresh {
					errs <- err
					return
				}
			}
		}()
	}
	// Churn while the clients hammer.
	dirEnt, _ := tr.Lookup(core.PathOf("dir"))
	dirCtx, _ := w.ContextOf(dirEnt)
	dirCtx.Bind("hot", fresh)

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// After churn, a fresh client must see the new binding.
	client, err := nameserver.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	got, err := client.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != fresh {
		t.Fatalf("post-churn resolve = %v, want %v", got, fresh)
	}
}

// sharednsExportTree builds a small exported tree with dir/hot bound.
func sharednsExportTree(t *testing.T, w *core.World) *dirtree.Tree {
	t.Helper()
	tr := dirtree.New(w, "export")
	if _, err := tr.Create(core.ParsePath("dir/hot"), "v1"); err != nil {
		t.Fatal(err)
	}
	return tr
}
