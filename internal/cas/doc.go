// Package cas is a content-addressed store of immutable blobs: every blob
// is identified by the SHA-256 hash of its bytes, so a blob's name IS its
// content. Identity-by-content is what makes the paper's weak coherence
// structural one level up (internal/snapstore): replicas of the same
// subtree serialize to the same blobs and therefore share one hash by
// construction — agreement is a property of the store, not a protocol
// promise.
//
// Backend is the placement seam (restic-style): Mem keeps blobs in a map
// for tests and replica bring-up scratch space; Local keeps them in a
// fanned-out directory with write-then-rename + fsync durability, so a
// blob either exists whole or not at all — a crashed writer leaves only a
// temp file that Verify and sweeps ignore. Store layers hashing, blob
// verification, and dedup accounting over any Backend.
//
// Invariants (enforced by the casimmut analyzer):
//   - a blob's bytes are never written after Put returns;
//   - every Backend.Put that touches the filesystem reaches an fsync
//     before reporting success.
package cas
