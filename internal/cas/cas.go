package cas

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// HashSize is the length of a blob hash in bytes.
const HashSize = sha256.Size

// Hash identifies a blob by the SHA-256 of its contents. The zero Hash
// identifies nothing.
type Hash [HashSize]byte

// Sum returns the hash of data.
func Sum(data []byte) Hash {
	return sha256.Sum256(data)
}

// String renders the hash in lowercase hex.
func (h Hash) String() string {
	return hex.EncodeToString(h[:])
}

// IsZero reports whether h is the zero hash (no blob).
func (h Hash) IsZero() bool {
	return h == Hash{}
}

// ParseHash parses a lowercase-hex hash as produced by String.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("parse hash %q: %w", s, err)
	}
	if len(b) != HashSize {
		return h, fmt.Errorf("parse hash %q: %d bytes, want %d", s, len(b), HashSize)
	}
	copy(h[:], b)
	return h, nil
}

// Errors returned by stores and backends.
var (
	// ErrNotFound is returned by Get for a hash the store does not hold.
	ErrNotFound = errors.New("blob not found")
	// ErrCorrupt is returned when a blob's bytes do not hash to its key.
	ErrCorrupt = errors.New("corrupt blob")
)

// Backend stores immutable blobs under their hash. Implementations must be
// safe for concurrent use. Put must be idempotent (putting a blob that
// already exists is a no-op) and durable: when Put returns nil the blob
// survives a crash of the process (for backends with any notion of
// durability — Mem's "durability" is the life of the process).
type Backend interface {
	// Put stores data under h. The caller promises h == Sum(data) and must
	// not modify data after Put returns (casimmut enforces both sides).
	Put(h Hash, data []byte) error
	// Get returns the blob stored under h, or ErrNotFound.
	Get(h Hash) ([]byte, error)
	// Has reports whether a blob is stored under h, without reading it.
	Has(h Hash) (bool, error)
	// List calls fn for every stored hash, stopping at the first error.
	List(fn func(Hash) error) error
}

// Stats counts a Store's traffic. Puts counts logical writes; Stored
// counts the ones that actually reached the backend — the rest were
// dedup'd by the existence check. PutBytes/StoredBytes are the same split
// in bytes, so StoredBytes/PutBytes is the inverse of the dedup ratio.
type Stats struct {
	Puts, Stored          int
	PutBytes, StoredBytes int64
}

// DedupRatio returns logical bytes over stored bytes: 1.0 means nothing
// was shared, 2.0 means every blob was written twice but stored once.
func (s Stats) DedupRatio() float64 {
	if s.StoredBytes == 0 {
		if s.PutBytes == 0 {
			return 1
		}
		return float64(s.PutBytes)
	}
	return float64(s.PutBytes) / float64(s.StoredBytes)
}

// Store is a hashing, verifying, dedup-accounting layer over a Backend.
type Store struct {
	backend Backend

	mu    sync.Mutex
	stats Stats
}

// NewStore returns a Store over the given backend.
func NewStore(b Backend) *Store {
	return &Store{backend: b}
}

// Backend returns the store's backend (for CatchUp-style blob transfer).
func (s *Store) Backend() Backend { return s.backend }

// Put hashes data and stores it, skipping the backend write when a blob
// with the same hash already exists (content addressing makes the
// existence check sufficient: same hash, same bytes). The caller must not
// modify data after Put returns.
func (s *Store) Put(data []byte) (Hash, error) {
	h := Sum(data)
	ok, err := s.backend.Has(h)
	if err != nil {
		return Hash{}, fmt.Errorf("has %s: %w", h, err)
	}
	if !ok {
		if err := s.backend.Put(h, data); err != nil {
			return Hash{}, fmt.Errorf("put %s: %w", h, err)
		}
	}
	s.mu.Lock()
	s.stats.Puts++
	s.stats.PutBytes += int64(len(data))
	if !ok {
		s.stats.Stored++
		s.stats.StoredBytes += int64(len(data))
	}
	s.mu.Unlock()
	return h, nil
}

// Get returns the blob stored under h after verifying that its bytes
// still hash to h; a mismatch is reported as ErrCorrupt, never returned
// as data.
func (s *Store) Get(h Hash) ([]byte, error) {
	data, err := s.backend.Get(h)
	if err != nil {
		return nil, err
	}
	if Sum(data) != h {
		return nil, fmt.Errorf("%s: %w", h, ErrCorrupt)
	}
	return data, nil
}

// Has reports whether the store holds a blob under h.
func (s *Store) Has(h Hash) (bool, error) {
	return s.backend.Has(h)
}

// Stats returns a copy of the dedup counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Verify re-hashes every blob in the store and returns the hashes whose
// bytes no longer match — the store's corruption report.
func (s *Store) Verify() (corrupt []Hash, err error) {
	err = s.backend.List(func(h Hash) error {
		data, err := s.backend.Get(h)
		if err != nil {
			return fmt.Errorf("verify %s: %w", h, err)
		}
		if Sum(data) != h {
			corrupt = append(corrupt, h)
		}
		return nil
	})
	return corrupt, err
}
