package cas

import "sync"

// Mem is an in-memory Backend: a map guarded by a mutex. It copies blobs
// on the way in and out, so no caller can mutate a stored blob — the
// immutability contract holds even against buggy callers.
type Mem struct {
	mu    sync.RWMutex
	blobs map[Hash][]byte
}

var _ Backend = (*Mem)(nil)

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{blobs: make(map[Hash][]byte)}
}

// Put stores a copy of data under h.
func (m *Mem) Put(h Hash, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.blobs[h]; ok {
		return nil // immutable: the existing bytes are the same bytes
	}
	m.blobs[h] = cp
	return nil
}

// Get returns a copy of the blob stored under h.
func (m *Mem) Get(h Hash) ([]byte, error) {
	m.mu.RLock()
	data, ok := m.blobs[h]
	m.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Has reports whether a blob is stored under h.
func (m *Mem) Has(h Hash) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.blobs[h]
	return ok, nil
}

// List calls fn for every stored hash.
func (m *Mem) List(fn func(Hash) error) error {
	m.mu.RLock()
	hashes := make([]Hash, 0, len(m.blobs))
	for h := range m.blobs {
		hashes = append(hashes, h)
	}
	m.mu.RUnlock()
	for _, h := range hashes {
		if err := fn(h); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of stored blobs.
func (m *Mem) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.blobs)
}
