package cas

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// tmpPrefix marks in-flight blob writes. A crash between the temp write
// and the rename leaves only a tmpPrefix file, which every reader ignores
// and SweepTemps removes — the published namespace never holds a partial
// blob.
const tmpPrefix = "tmp-"

// Local is a filesystem Backend: each blob lives at <dir>/<hh>/<hex>,
// fanned out by the first hash byte. Writes are write-then-rename with an
// fsync of both the blob and its directory before Put reports success, so
// a blob is durable the moment the caller sees nil.
type Local struct {
	dir string

	// PutHook, when non-nil, runs after the temp file is written and
	// synced but before it is renamed into place. It exists so crash
	// tests can kill a writer mid-publish: returning an error abandons
	// the Put exactly as a crash would, leaving only the temp file.
	// Set it before any Put is in flight; it is read without locking.
	PutHook func(h Hash, tmpPath string) error

	mu      sync.Mutex
	buckets map[string]bool // fan-out dirs known to exist and be synced
}

var _ Backend = (*Local)(nil)

// OpenLocal opens (creating if needed) a local blob directory.
func OpenLocal(dir string) (*Local, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("open blob dir: %w", err)
	}
	return &Local{dir: dir, buckets: make(map[string]bool)}, nil
}

// Dir returns the backend's root directory.
func (l *Local) Dir() string { return l.dir }

// blobPath returns the final path for h and its fan-out directory.
func (l *Local) blobPath(h Hash) (bucket, path string) {
	hex := h.String()
	bucket = filepath.Join(l.dir, hex[:2])
	return bucket, filepath.Join(bucket, hex)
}

// ensureBucket creates and fsyncs the fan-out directory once, so the
// directory entry itself survives a crash.
func (l *Local) ensureBucket(bucket string) error {
	l.mu.Lock()
	known := l.buckets[bucket]
	l.mu.Unlock()
	if known {
		return nil
	}
	if err := os.MkdirAll(bucket, 0o777); err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.mu.Lock()
	l.buckets[bucket] = true
	l.mu.Unlock()
	return nil
}

// Put durably stores data under h: temp file in the same directory, write,
// fsync, rename into place, fsync the directory. Present blobs are left
// untouched (immutable, same bytes by content addressing).
func (l *Local) Put(h Hash, data []byte) error {
	bucket, path := l.blobPath(h)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := l.ensureBucket(bucket); err != nil {
		return fmt.Errorf("blob bucket: %w", err)
	}
	f, err := os.CreateTemp(bucket, tmpPrefix)
	if err != nil {
		return fmt.Errorf("blob temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("blob write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("blob fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("blob close: %w", err)
	}
	if hook := l.PutHook; hook != nil {
		if err := hook(h, tmp); err != nil {
			// Simulated crash: abandon the publish, leave the temp file
			// exactly as a dead process would.
			return fmt.Errorf("blob put aborted: %w", err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("blob publish: %w", err)
	}
	if err := syncDir(bucket); err != nil {
		return fmt.Errorf("blob dir fsync: %w", err)
	}
	return nil
}

// Get returns the blob stored under h.
func (l *Local) Get(h Hash) ([]byte, error) {
	_, path := l.blobPath(h)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("blob read: %w", err)
	}
	return data, nil
}

// Has reports whether a blob is stored under h.
func (l *Local) Has(h Hash) (bool, error) {
	_, path := l.blobPath(h)
	if _, err := os.Stat(path); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil
		}
		return false, fmt.Errorf("blob stat: %w", err)
	}
	return true, nil
}

// List calls fn for every published blob, ignoring temp files and foreign
// directory entries.
func (l *Local) List(fn func(Hash) error) error {
	buckets, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("list blob dir: %w", err)
	}
	for _, b := range buckets {
		if !b.IsDir() || len(b.Name()) != 2 {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(l.dir, b.Name()))
		if err != nil {
			return fmt.Errorf("list bucket %s: %w", b.Name(), err)
		}
		for _, e := range entries {
			if e.IsDir() || strings.HasPrefix(e.Name(), tmpPrefix) {
				continue
			}
			h, err := ParseHash(e.Name())
			if err != nil {
				continue // foreign file; not ours to report
			}
			if err := fn(h); err != nil {
				return err
			}
		}
	}
	return nil
}

// SweepTemps removes temp files abandoned by crashed writers and returns
// how many were removed. Safe to run concurrently with readers: temp
// files are never part of the published namespace. It must not run
// concurrently with writers, which may have temp files legitimately in
// flight — call it at open time, before serving.
func (l *Local) SweepTemps() (int, error) {
	removed := 0
	buckets, err := os.ReadDir(l.dir)
	if err != nil {
		return 0, fmt.Errorf("sweep blob dir: %w", err)
	}
	for _, b := range buckets {
		if !b.IsDir() {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(l.dir, b.Name()))
		if err != nil {
			return removed, fmt.Errorf("sweep bucket %s: %w", b.Name(), err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasPrefix(e.Name(), tmpPrefix) {
				continue
			}
			if err := os.Remove(filepath.Join(l.dir, b.Name(), e.Name())); err != nil {
				return removed, fmt.Errorf("sweep temp: %w", err)
			}
			removed++
		}
	}
	return removed, nil
}

// syncDir fsyncs a directory so renames and creations within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
