package cas

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// backends returns one of every Backend implementation, fresh.
func backends(t *testing.T) map[string]Backend {
	t.Helper()
	local, err := OpenLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{
		"mem":   NewMem(),
		"local": local,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := NewStore(b)
			data := []byte("hello, blobs")
			h, err := s.Put(data)
			if err != nil {
				t.Fatal(err)
			}
			if h != Sum(data) {
				t.Fatalf("hash %s != Sum %s", h, Sum(data))
			}
			got, err := s.Get(h)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("got %q, want %q", got, data)
			}
			ok, err := s.Has(h)
			if err != nil || !ok {
				t.Fatalf("Has = %v, %v", ok, err)
			}
			if _, err := s.Get(Sum([]byte("absent"))); !errors.Is(err, ErrNotFound) {
				t.Fatalf("absent Get err = %v", err)
			}
		})
	}
}

func TestStoreDedup(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := NewStore(b)
			blob := []byte("shared subtree bytes")
			for i := 0; i < 4; i++ {
				if _, err := s.Put(blob); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Put([]byte("unique")); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Puts != 5 || st.Stored != 2 {
				t.Fatalf("stats = %+v, want 5 puts / 2 stored", st)
			}
			if st.DedupRatio() <= 1 {
				t.Fatalf("dedup ratio %v, want > 1", st.DedupRatio())
			}
		})
	}
}

func TestStoreImmutability(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := NewStore(b)
			data := []byte("immutable")
			h, err := s.Put(data)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Get(h)
			if err != nil {
				t.Fatal(err)
			}
			// Mutating what Get returned must not corrupt the store.
			got[0] = 'X'
			again, err := s.Get(h)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, data) {
				t.Fatalf("stored blob changed to %q", again)
			}
		})
	}
}

func TestListAndVerify(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := NewStore(b)
			want := make(map[Hash]bool)
			for i := 0; i < 10; i++ {
				h, err := s.Put([]byte(fmt.Sprintf("blob-%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				want[h] = true
			}
			got := make(map[Hash]bool)
			if err := b.List(func(h Hash) error {
				got[h] = true
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("listed %d blobs, want %d", len(got), len(want))
			}
			for h := range want {
				if !got[h] {
					t.Fatalf("List missed %s", h)
				}
			}
			corrupt, err := s.Verify()
			if err != nil {
				t.Fatal(err)
			}
			if len(corrupt) != 0 {
				t.Fatalf("clean store reports corrupt blobs: %v", corrupt)
			}
		})
	}
}

func TestParseHash(t *testing.T) {
	h := Sum([]byte("x"))
	back, err := ParseHash(h.String())
	if err != nil || back != h {
		t.Fatalf("round trip: %v, %v", back, err)
	}
	if _, err := ParseHash("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Fatal("short hash accepted")
	}
	if (Hash{}).IsZero() != true || h.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestStoreConcurrentPut(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := NewStore(b)
			done := make(chan error, 8)
			for g := 0; g < 8; g++ {
				go func(g int) {
					var err error
					for i := 0; i < 50 && err == nil; i++ {
						// Half shared across goroutines, half unique.
						_, err = s.Put([]byte(fmt.Sprintf("blob-%d", i%25+g*(i%2)*100)))
					}
					done <- err
				}(g)
			}
			for g := 0; g < 8; g++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
			if corrupt, err := s.Verify(); err != nil || len(corrupt) != 0 {
				t.Fatalf("after concurrent puts: corrupt=%v err=%v", corrupt, err)
			}
		})
	}
}
