package cas

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLocalSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("durable")
	h := Sum(data)
	if err := l.Put(h, data); err != nil {
		t.Fatal(err)
	}
	// A fresh handle over the same directory sees the blob.
	l2, err := OpenLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := l2.Get(h)
	if err != nil || string(got) != "durable" {
		t.Fatalf("reopened Get = %q, %v", got, err)
	}
}

func TestLocalCrashedPutLeavesNoBlob(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("simulated crash")
	var tmpSeen string
	l.PutHook = func(h Hash, tmp string) error {
		tmpSeen = tmp
		return boom
	}
	data := []byte("never published")
	h := Sum(data)
	if err := l.Put(h, data); !errors.Is(err, boom) {
		t.Fatalf("Put err = %v, want crash", err)
	}
	if tmpSeen == "" {
		t.Fatal("hook never ran")
	}
	// The blob must not be visible...
	if ok, _ := l.Has(h); ok {
		t.Fatal("crashed Put published a blob")
	}
	if _, err := l.Get(h); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after crash = %v", err)
	}
	// ...the temp file is left behind, as a real crash would...
	if _, err := os.Stat(tmpSeen); err != nil {
		t.Fatalf("temp file gone: %v", err)
	}
	// ...List ignores it, Verify reports nothing corrupt...
	if err := l.List(func(h Hash) error {
		t.Fatalf("List reported %s from a crashed put", h)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if corrupt, err := NewStore(l).Verify(); err != nil || len(corrupt) != 0 {
		t.Fatalf("Verify = %v, %v", corrupt, err)
	}
	// ...and SweepTemps cleans it up.
	l.PutHook = nil
	n, err := l.SweepTemps()
	if err != nil || n != 1 {
		t.Fatalf("SweepTemps = %d, %v", n, err)
	}
	if _, err := os.Stat(tmpSeen); err == nil {
		t.Fatal("temp survived sweep")
	}
	// The same blob can be published afterwards.
	if err := l.Put(h, data); err != nil {
		t.Fatal(err)
	}
	if ok, _ := l.Has(h); !ok {
		t.Fatal("blob missing after retry")
	}
}

func TestLocalVerifyDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(l)
	h, err := s.Put([]byte("pristine"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip bytes behind the store's back.
	path := filepath.Join(dir, h.String()[:2], h.String())
	if err := os.WriteFile(path, []byte("tampered"), 0o666); err != nil {
		t.Fatal(err)
	}
	corrupt, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 1 || corrupt[0] != h {
		t.Fatalf("corrupt = %v, want [%s]", corrupt, h)
	}
	if _, err := s.Get(h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of tampered blob = %v, want ErrCorrupt", err)
	}
}

func TestLocalListIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := Sum([]byte("real"))
	if err := l.Put(h, []byte("real")); err != nil {
		t.Fatal(err)
	}
	// Drop junk into the tree: a stray file at the root and a non-hash
	// name inside a bucket.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, h.String()[:2], "notes.txt"), []byte("hi"), 0o666); err != nil {
		t.Fatal(err)
	}
	var listed []Hash
	if err := l.List(func(h Hash) error {
		listed = append(listed, h)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0] != h {
		t.Fatalf("listed %v, want just %s", listed, h)
	}
}

func TestLocalFanOut(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("fan me out")
	h := Sum(data)
	if err := l.Put(h, data); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, h.String()[:2], h.String())
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("blob not at %s: %v", want, err)
	}
	if !strings.HasPrefix(filepath.Base(filepath.Dir(want)), h.String()[:2]) {
		t.Fatal("bucket not derived from hash prefix")
	}
}
