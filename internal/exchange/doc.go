// Package exchange generalizes the paper's §6 approach I — "use an
// appropriate resolution rule" — to textual names exchanged between
// processes over the simulated network.
//
// A name embedded in a message is valid in the context of the sender, not
// necessarily of the receiver. The R(sender) rule is implemented the way
// the paper implements it for pids: by translating the embedded name at
// the communication boundary, with a Translator appropriate to the scheme
// in force — the Newcastle machine-mapping rule, a federation prefix map,
// or the identity (the R(receiver) baseline that loses coherence).
package exchange
