package exchange

import (
	"errors"
	"testing"

	"namecoherence/internal/core"
	"namecoherence/internal/federation"
	"namecoherence/internal/newcastle"
)

// newcastlePair builds a two-machine Newcastle system with a file on each
// machine and one probe process per machine.
func newcastlePair(t *testing.T) (*newcastle.System, *Party, *Party, *Exchanger) {
	t.Helper()
	w := core.NewWorld()
	s, err := newcastle.NewSystem(w, "m1", "m2")
	if err != nil {
		t.Fatal(err)
	}
	for _, mn := range s.MachineNames() {
		m, _ := s.Machine(mn)
		if _, err := m.Tree.Create(core.ParsePath("etc/passwd"), "users@"+mn); err != nil {
			t.Fatal(err)
		}
	}
	p1, err := s.Spawn("m1", "p1")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Spawn("m2", "p2")
	if err != nil {
		t.Fatal(err)
	}

	x := NewExchanger(&NewcastleTranslator{System: s})
	a, err := x.Join(p1, "m1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := x.Join(p2, "m2")
	if err != nil {
		t.Fatal(err)
	}
	return s, a, b, x
}

func TestNewcastleTranslatedExchangeCoherent(t *testing.T) {
	_, a, b, x := newcastlePair(t)
	coherent, sent, err := x.RoundTrip(a, b, "/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	if !coherent {
		t.Fatal("translated Newcastle exchange incoherent")
	}
	if sent != "/../m1/etc/passwd" {
		t.Fatalf("sent name = %q", sent)
	}
}

func TestIdentityExchangeIncoherent(t *testing.T) {
	w := core.NewWorld()
	s, err := newcastle.NewSystem(w, "m1", "m2")
	if err != nil {
		t.Fatal(err)
	}
	for _, mn := range s.MachineNames() {
		m, _ := s.Machine(mn)
		if _, err := m.Tree.Create(core.ParsePath("etc/passwd"), "users@"+mn); err != nil {
			t.Fatal(err)
		}
	}
	p1, _ := s.Spawn("m1", "p1")
	p2, _ := s.Spawn("m2", "p2")

	x := NewExchanger(nil) // identity baseline
	a, err := x.Join(p1, "m1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := x.Join(p2, "m2")
	if err != nil {
		t.Fatal(err)
	}
	coherent, sent, err := x.RoundTrip(a, b, "/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	if coherent {
		t.Fatal("verbatim cross-machine exchange should be incoherent (name collision)")
	}
	if sent != "/etc/passwd" {
		t.Fatalf("identity changed the name: %q", sent)
	}
}

func TestSameMachineExchangeIdentity(t *testing.T) {
	_, a, _, x := newcastlePair(t)
	// Joining a second process on the same machine: translation is the
	// identity and exchange is coherent.
	p1b := a.Proc.Fork("p1b")
	c, err := x.Join(p1b, "m1")
	if err != nil {
		t.Fatal(err)
	}
	coherent, sent, err := x.RoundTrip(a, c, "/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	if !coherent || sent != "/etc/passwd" {
		t.Fatalf("same-machine exchange: coherent=%v sent=%q", coherent, sent)
	}
}

func TestPrefixTranslator(t *testing.T) {
	pm := federation.NewPrefixMapper()
	pm.AddRule("/users", "/org2-users")
	tr := &PrefixTranslator{Mapper: pm}
	got, err := tr.Translate("/users/bob", "org2", "org1")
	if err != nil || got != "/org2-users/bob" {
		t.Fatalf("Translate = %q, %v", got, err)
	}
	// Non-matching names pass through.
	got, err = tr.Translate("/other", "org2", "org1")
	if err != nil || got != "/other" {
		t.Fatalf("Translate = %q, %v", got, err)
	}
	if tr.String() != "prefix-mapping" {
		t.Fatalf("String = %q", tr.String())
	}
}

func TestFuncTranslator(t *testing.T) {
	f := Func{
		Label: "custom",
		TranslateFunc: func(name, from, to string) (string, error) {
			return "/" + from + name, nil
		},
	}
	got, err := f.Translate("/x", "a", "b")
	if err != nil || got != "/a/x" {
		t.Fatalf("Translate = %q, %v", got, err)
	}
	if f.String() != "custom" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestTranslateError(t *testing.T) {
	_, a, b, x := newcastlePair(t)
	// Relative names cannot be mapped by the Newcastle rule.
	if err := x.Send(a, b, "relative/name"); err == nil {
		t.Fatal("expected translate error for relative name")
	}
}

func TestReceiveEmptyMailbox(t *testing.T) {
	_, a, _, _ := newcastlePair(t)
	if _, _, err := a.ReceiveResolve(); !errors.Is(err, ErrNotAName) {
		t.Fatalf("err = %v, want ErrNotAName", err)
	}
}

func TestSendUnjoinedParty(t *testing.T) {
	_, a, _, x := newcastlePair(t)
	stranger := &Party{Proc: a.Proc, Realm: "m1"}
	if err := x.Send(stranger, a, "/etc/passwd"); err == nil {
		t.Fatal("unjoined sender accepted")
	}
	if err := x.Send(a, stranger, "/etc/passwd"); err == nil {
		t.Fatal("unjoined receiver accepted")
	}
}

func TestRoundTripSenderCannotResolve(t *testing.T) {
	_, a, b, x := newcastlePair(t)
	if _, _, err := x.RoundTrip(a, b, "/no/such/file"); err == nil {
		t.Fatal("expected error when sender cannot resolve")
	}
}

func TestIdentityTranslatorString(t *testing.T) {
	if (Identity{}).String() != "identity" {
		t.Fatal("identity label wrong")
	}
	if (&NewcastleTranslator{}).String() != "newcastle-mapping" {
		t.Fatal("newcastle label wrong")
	}
}
