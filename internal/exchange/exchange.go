package exchange

import (
	"errors"
	"fmt"

	"namecoherence/internal/core"
	"namecoherence/internal/federation"
	"namecoherence/internal/machine"
	"namecoherence/internal/netsim"
	"namecoherence/internal/newcastle"
)

// Translator rewrites a textual name crossing from one party's context to
// another's, implementing R(sender) at the boundary. From and to identify
// the parties by their realm labels (machine names, organization names —
// whatever the scheme keys translation on).
type Translator interface {
	// Translate rewrites name for the receiver's context.
	Translate(name, from, to string) (string, error)
	// String names the translator for reports.
	String() string
}

// Identity performs no translation — the R(receiver) baseline.
type Identity struct{}

var _ Translator = Identity{}

// Translate implements Translator.
func (Identity) Translate(name, _, _ string) (string, error) { return name, nil }

// String implements Translator.
func (Identity) String() string { return "identity" }

// NewcastleTranslator maps absolute names between machines of a Newcastle
// Connection using the system's ".."-prefix rule.
type NewcastleTranslator struct {
	// System is the Newcastle Connection the parties live in.
	System *newcastle.System
}

var _ Translator = (*NewcastleTranslator)(nil)

// Translate implements Translator.
func (t *NewcastleTranslator) Translate(name, from, to string) (string, error) {
	return t.System.MapName(from, to, name)
}

// String implements Translator.
func (t *NewcastleTranslator) String() string { return "newcastle-mapping" }

// PrefixTranslator applies a federation prefix map to names crossing in
// one direction (the direction the rules were written for).
type PrefixTranslator struct {
	// Mapper holds the prefix rules.
	Mapper *federation.PrefixMapper
}

var _ Translator = (*PrefixTranslator)(nil)

// Translate implements Translator.
func (t *PrefixTranslator) Translate(name, _, _ string) (string, error) {
	mapped, _ := t.Mapper.Map(name)
	return mapped, nil
}

// String implements Translator.
func (t *PrefixTranslator) String() string { return "prefix-mapping" }

// Func adapts a function to the Translator interface.
type Func struct {
	// TranslateFunc is invoked for Translate.
	TranslateFunc func(name, from, to string) (string, error)
	// Label is returned by String.
	Label string
}

var _ Translator = Func{}

// Translate implements Translator.
func (f Func) Translate(name, from, to string) (string, error) {
	return f.TranslateFunc(name, from, to)
}

// String implements Translator.
func (f Func) String() string { return f.Label }

// Party is a process reachable on the network: a resolving process plus an
// endpoint and the realm label translation keys on.
type Party struct {
	// Proc resolves names delivered to the party.
	Proc *machine.Process
	// Realm is the translation key (e.g. the machine name).
	Realm string

	endpoint *netsim.Endpoint
}

// ErrNotAName is returned when a received payload is not a name message.
var ErrNotAName = errors.New("payload is not a name message")

// nameMsg is the wire payload.
type nameMsg struct {
	Name string
}

// Exchanger wires parties together over a network with a boundary
// translator.
type Exchanger struct {
	// Network carries the messages.
	Network *netsim.Network
	// Translator rewrites names in transit (nil means Identity).
	Translator Translator

	nextLocal uint32
	parties   map[*Party]netsim.Addr
}

// NewExchanger returns an exchanger over a fresh network.
func NewExchanger(tr Translator) *Exchanger {
	if tr == nil {
		tr = Identity{}
	}
	return &Exchanger{
		Network:    netsim.NewNetwork(),
		Translator: tr,
		parties:    make(map[*Party]netsim.Addr),
	}
}

// Join registers a process as a party.
func (x *Exchanger) Join(proc *machine.Process, realm string) (*Party, error) {
	x.nextLocal++
	addr := netsim.Addr{Net: 1, Mach: uint32(len(x.parties) + 1), Local: x.nextLocal}
	ep, err := x.Network.Register(addr)
	if err != nil {
		return nil, fmt.Errorf("join %q: %w", realm, err)
	}
	p := &Party{Proc: proc, Realm: realm, endpoint: ep}
	x.parties[p] = addr
	return p, nil
}

// Send transmits a textual name from one party to another, translating it
// at the boundary.
func (x *Exchanger) Send(from, to *Party, name string) error {
	translated, err := x.Translator.Translate(name, from.Realm, to.Realm)
	if err != nil {
		return fmt.Errorf("translate %q %s→%s: %w", name, from.Realm, to.Realm, err)
	}
	fromAddr, ok := x.parties[from]
	if !ok {
		return fmt.Errorf("send: sender not joined")
	}
	toAddr, ok := x.parties[to]
	if !ok {
		return fmt.Errorf("send: receiver not joined")
	}
	return x.Network.Send(fromAddr, toAddr, nameMsg{Name: translated})
}

// ReceiveResolve dequeues the next name message and resolves it in the
// party's own context, returning the entity, the (possibly translated)
// name as received, and any resolution error. It fails with ErrNotAName if
// no name message is pending.
func (p *Party) ReceiveResolve() (core.Entity, string, error) {
	m, ok := p.endpoint.TryRecv()
	if !ok {
		return core.Undefined, "", fmt.Errorf("receive: empty mailbox: %w", ErrNotAName)
	}
	msg, ok := m.Payload.(nameMsg)
	if !ok {
		return core.Undefined, "", fmt.Errorf("receive %T: %w", m.Payload, ErrNotAName)
	}
	e, err := p.Proc.Resolve(msg.Name)
	return e, msg.Name, err
}

// RoundTrip sends a name and immediately receives+resolves it at the far
// end, reporting whether the receiver's entity matches the sender's.
func (x *Exchanger) RoundTrip(from, to *Party, name string) (coherent bool, sent string, err error) {
	want, err := from.Proc.Resolve(name)
	if err != nil {
		return false, "", fmt.Errorf("round trip: sender cannot resolve %q: %w", name, err)
	}
	if err := x.Send(from, to, name); err != nil {
		return false, "", err
	}
	got, sent, resolveErr := to.ReceiveResolve()
	if resolveErr != nil {
		return false, sent, nil // delivered but unresolvable: incoherent, not an error
	}
	return got == want, sent, nil
}
