// Quickstart: the naming model in a dozen lines — contexts, compound names,
// closure rules and a coherence check.
package main

import (
	"fmt"
	"os"

	"namecoherence/naming"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	w := naming.NewWorld()

	// Two activities with private contexts. Both bind "report" — to
	// different files. Both bind "motd" to the same file.
	alice := w.NewActivity("alice")
	bob := w.NewActivity("bob")
	motd := w.NewObject("motd-file")

	contexts := naming.NewAssoc()
	for _, a := range []naming.Entity{alice, bob} {
		ctx := naming.NewContext()
		ctx.Bind("motd", motd)
		ctx.Bind("report", w.NewObject("report-of-"+w.Label(a)))
		contexts.Set(a, ctx)
	}

	// The closure mechanism: resolve every name in the context of the
	// activity performing the resolution — R(activity).
	resolver := naming.NewResolver(w, &naming.ActivityRule{Contexts: contexts})
	resolve := func(a naming.Entity, p naming.Path) (naming.Entity, error) {
		return resolver.Resolve(naming.Internal(a), p)
	}

	// Probe coherence: does each name mean the same thing to both?
	activities := []naming.Entity{alice, bob}
	for _, name := range []string{"motd", "report"} {
		outcome := naming.CheckName(w, resolve, activities, naming.ParsePath(name))
		fmt.Printf("%-8s -> %s\n", name, outcome)
	}

	// Compound names resolve through context objects (directories).
	root, rootCtx := w.NewContextObject("root")
	_ = root
	docs, docsCtx := w.NewContextObject("docs")
	paper := w.NewObject("paper.txt")
	rootCtx.Bind("docs", docs)
	docsCtx.Bind("paper", paper)
	e, err := w.Resolve(rootCtx, naming.ParsePath("docs/paper"))
	if err != nil {
		return err
	}
	fmt.Printf("docs/paper resolves to %v (%s)\n", e, w.Label(e))
	return nil
}
