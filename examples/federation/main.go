// Federation: two autonomous organizations (the paper's Figure 5 and §7)
// connect their naming systems with a cross-link; names exchanged across
// the boundary are incoherent until the human prefix-mapping closure is
// applied at the boundary.
package main

import (
	"fmt"
	"os"

	"namecoherence/naming"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "federation:", err)
		os.Exit(1)
	}
}

func run() error {
	w := naming.NewWorld()
	fed := naming.NewFederation(w)

	// Each org attaches its users' homes under /users in its own shared
	// space — the same conventional name, disjoint contexts.
	org1, err := naming.NewSharedNS(w, "o1c1")
	if err != nil {
		return err
	}
	org2, err := naming.NewSharedNS(w, "o2c1")
	if err != nil {
		return err
	}
	if _, err := org1.AttachSpace("users"); err != nil {
		return err
	}
	users2, err := org2.AttachSpace("users")
	if err != nil {
		return err
	}
	if _, err := users2.Tree.Create(naming.ParsePath("bob/profile"), "bob@org2"); err != nil {
		return err
	}
	if err := fed.AddSystem("org1", org1); err != nil {
		return err
	}
	if err := fed.AddSystem("org2", org2); err != nil {
		return err
	}

	sender, err := org2.Spawn("o2c1", "sender")
	if err != nil {
		return err
	}
	receiver, err := org1.Spawn("o1c1", "receiver")
	if err != nil {
		return err
	}

	fmt.Println("org2 sends org1 the name /users/bob/profile")

	out := naming.ExchangeName(sender, receiver, "/users/bob/profile", nil)
	fmt.Printf("  verbatim:     receiver resolves %q -> coherent=%v\n", out.SentName, out.Coherent)

	// The remedy: org1 cross-links org2's users space under /org2-users and
	// installs the prefix rule humans would use.
	if err := fed.CrossLink("org1", "org2-users", "org2", "users", "/"); err != nil {
		return err
	}
	pm := naming.NewPrefixMapper()
	pm.AddRule("/users", "/org2-users")

	out = naming.ExchangeName(sender, receiver, "/users/bob/profile", pm)
	fmt.Printf("  with mapping: receiver resolves %q -> coherent=%v\n", out.SentName, out.Coherent)

	// The same works through the message substrate with a boundary
	// translator (R(sender) implemented by mapping in transit).
	x := naming.NewExchanger(&naming.PrefixTranslator{Mapper: pm})
	a, err := x.Join(sender, "org2")
	if err != nil {
		return err
	}
	b, err := x.Join(receiver, "org1")
	if err != nil {
		return err
	}
	coherent, sent, err := x.RoundTrip(a, b, "/users/bob/profile")
	if err != nil {
		return err
	}
	fmt.Printf("  via exchange: delivered %q -> coherent=%v\n", sent, coherent)

	fmt.Println("\npaper §7: crossing a scope boundary needs the mapping closure; the")
	fmt.Println("rules stay simple (one prefix) as long as boundaries are crossed rarely.")
	return nil
}
