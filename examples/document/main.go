// Document: structured objects with embedded names (the paper's Figure 6).
// A document's chapters live in separate files referenced by embedded
// names; the Algol scope rule keeps the document meaningful after the whole
// subtree is relocated — where a naive root-relative scheme falls apart.
package main

import (
	"fmt"
	"os"

	"namecoherence/naming"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "document:", err)
		os.Exit(1)
	}
}

func run() error {
	w := naming.NewWorld()
	tr := naming.NewTree(w, "root")

	// A book subtree: main.tex includes chapters by embedded names that the
	// book directory itself binds.
	if _, err := tr.Create(naming.ParsePath("book/chapters/ch1.tex"), "Chapter 1: Contexts"); err != nil {
		return err
	}
	if _, err := tr.Create(naming.ParsePath("book/chapters/ch2.tex"), "Chapter 2: Closure"); err != nil {
		return err
	}
	if _, err := tr.Create(naming.ParsePath("book/main.tex"), "The Book",
		naming.ParsePath("chapters/ch1.tex"),
		naming.ParsePath("chapters/ch2.tex")); err != nil {
		return err
	}

	assemble := func(path string) (string, error) {
		_, trail, err := tr.LookupTrail(naming.ParsePath(path))
		if err != nil {
			return "", err
		}
		a := &naming.Assembler{World: w, Sep: "\n  + "}
		return a.Assemble(naming.ScopeChain(tr.Root, trail))
	}

	doc, err := assemble("book/main.tex")
	if err != nil {
		return err
	}
	fmt.Println("assembled in place:")
	fmt.Println("  " + doc)

	// Relocate the whole book; embedded names keep their meaning because
	// they resolve in the scope of the book subtree, not the global root.
	if _, err := tr.MkdirAll(naming.ParsePath("archive/2026")); err != nil {
		return err
	}
	if err := tr.Move(naming.ParsePath("book"), naming.ParsePath("archive/2026/book")); err != nil {
		return err
	}
	doc, err = assemble("archive/2026/book/main.tex")
	if err != nil {
		return err
	}
	fmt.Println("\nassembled after relocating the subtree to /archive/2026:")
	fmt.Println("  " + doc)

	// The same subtree attached at a second place assembles identically.
	book, err := tr.Lookup(naming.ParsePath("archive/2026/book"))
	if err != nil {
		return err
	}
	if err := tr.Attach(nil, "current-book", book); err != nil {
		return err
	}
	doc, err = assemble("current-book/main.tex")
	if err != nil {
		return err
	}
	fmt.Println("\nassembled through a simultaneous second attachment:")
	fmt.Println("  " + doc)

	fmt.Println("\npaper §6 Ex.2: the structured object can be relocated or attached in")
	fmt.Println("several places without changing the meaning of its embedded names.")
	return nil
}
