// Plan9: per-process namespaces and the remote-execution facility of the
// paper's §6 approach II — parameters passed from a parent to its remote
// child stay coherent without any global names.
package main

import (
	"fmt"
	"os"

	"namecoherence/naming"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "plan9:", err)
		os.Exit(1)
	}
}

func run() error {
	w := naming.NewWorld()
	workstation := naming.NewMachine(w, "workstation")
	server := naming.NewMachine(w, "cpu-server")
	if _, err := server.Tree.Create(naming.ParsePath("dev/fast-disk"), "server hardware"); err != nil {
		return err
	}

	// The parent builds its private namespace: its own machine under
	// /local, and a project subsystem under /proj.
	parent, err := naming.NewPerProc(workstation, "shell")
	if err != nil {
		return err
	}
	proj := naming.NewTree(w, "proj")
	if _, err := proj.Create(naming.ParsePath("src/build.conf"), "options"); err != nil {
		return err
	}
	if err := parent.Attach(nil, "proj", proj.Root); err != nil {
		return err
	}

	show := func(who string, p *naming.PerProc, name string) {
		e, err := p.Resolve(name)
		if err != nil {
			fmt.Printf("  %-12s %-22s -> error: %v\n", who, name, err)
			return
		}
		fmt.Printf("  %-12s %-22s -> %v (%s)\n", who, name, e, w.Label(e))
	}

	fmt.Println("parent namespace (on the workstation):")
	show("parent", parent, "/proj/src/build.conf")
	show("parent", parent, "/local/dev/fast-disk") // not on the workstation

	// Remote execution: the child runs on the cpu server in the parent's
	// arranged context, with /local rebound to the server.
	child, err := naming.RemoteExec(parent, server, "builder")
	if err != nil {
		return err
	}
	fmt.Println("\nremote child (on the cpu server):")
	show("child", child, "/proj/src/build.conf") // the parameter — same entity
	show("child", child, "/local/dev/fast-disk") // executor-local hardware

	pe, _ := parent.Resolve("/proj/src/build.conf")
	ce, _ := child.Resolve("/proj/src/build.conf")
	fmt.Printf("\nparameter coherent between parent and remote child: %v\n", pe == ce)
	fmt.Println("paper §6 II: the per-process view decouples a process from the context")
	fmt.Println("of its execution site; parameters stay coherent without global names.")
	return nil
}
