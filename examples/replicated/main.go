// Replicated: a replicated name service (the paper's weak coherence, §5,
// at the service level). Three replica servers answer for the same logical
// tree; a rotating client pool gets different — but same-replica — entities
// back, and keeps working when a replica dies.
package main

import (
	"fmt"
	"os"

	"namecoherence/naming"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replicated:", err)
		os.Exit(1)
	}
}

func run() error {
	w := naming.NewWorld()
	rs, err := naming.NewReplicaSet(w, `
dir /usr/bin
file /usr/bin/ls "#!ls"
`, 3)
	if err != nil {
		return err
	}
	defer rs.Close()
	pool, err := naming.NewReplicaPool(rs.Addrs())
	if err != nil {
		return err
	}
	defer pool.Close()

	p := naming.ParsePath("usr/bin/ls")
	fmt.Println("resolving usr/bin/ls six times through the rotating pool:")
	var first naming.Entity
	for i := 0; i < 6; i++ {
		e, err := pool.Resolve(p)
		if err != nil {
			return err
		}
		if i == 0 {
			first = e
		}
		fmt.Printf("  -> %v  (same entity: %v, same replica group: %v)\n",
			e, e == first, w.SameReplica(first, e))
	}

	fmt.Println("\nkilling replica 0; the pool fails over:")
	if err := rs.StopReplica(0); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		e, err := pool.Resolve(p)
		if err != nil {
			return err
		}
		fmt.Printf("  -> %v\n", e)
	}
	fmt.Printf("failovers: %d\n", pool.Failovers())
	fmt.Println("\npaper §5: for replicated objects, weak coherence — same replica")
	fmt.Println("group, not same entity — is the right requirement, and it buys")
	fmt.Println("availability.")
	return nil
}
