// Andrew: the shared-naming-graph approach of the paper's Figure 4 — a
// shared tree at /vice, private local trees, and replicated commands that
// are only weakly coherent.
package main

import (
	"fmt"
	"os"

	"namecoherence/naming"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "andrew:", err)
		os.Exit(1)
	}
}

func run() error {
	w := naming.NewWorld()
	s, err := naming.NewSharedNS(w, "ws1", "ws2", "ws3")
	if err != nil {
		return err
	}

	// The shared naming graph, attached under /vice on every client.
	vice, err := s.AttachSpace(naming.ViceName)
	if err != nil {
		return err
	}
	if _, err := vice.Tree.Create(naming.ParsePath("usr/paper.tex"), "shared document"); err != nil {
		return err
	}

	// Private local files, and a replicated command bound per machine.
	for _, cn := range s.ClientNames() {
		c, err := s.Client(cn)
		if err != nil {
			return err
		}
		if _, err := c.Machine.Tree.Create(naming.ParsePath("home/"+cn+"/notes"), "private"); err != nil {
			return err
		}
	}
	if _, err := s.ReplicateCommand("/bin/ls", "#!ls"); err != nil {
		return err
	}

	var activities []naming.Entity
	for _, cn := range s.ClientNames() {
		p, err := s.Spawn(cn, "probe")
		if err != nil {
			return err
		}
		activities = append(activities, p.Activity)
	}

	probes := []string{
		"vice/usr/paper.tex", // in the shared graph
		"bin/ls",             // replicated command
		"home/ws1/notes",     // local to ws1
	}
	fmt.Println("coherence of each name across all three clients:")
	for _, name := range probes {
		outcome := naming.CheckName(w, s.Registry.ResolveAbs, activities, naming.ParsePath(name))
		fmt.Printf("  /%-20s -> %s\n", name, outcome)
	}

	rep := naming.Measure(w, s.Registry.ResolveAbs, activities,
		[]naming.Path{
			naming.ParsePath("vice/usr/paper.tex"),
			naming.ParsePath("bin/ls"),
			naming.ParsePath("home/ws1/notes"),
		})
	fmt.Printf("\nstrict coherence degree: %.2f, weak: %.2f\n",
		rep.StrictDegree(), rep.WeakDegree())
	fmt.Println("paper §5.2: the shared graph is coherent, replicated commands are")
	fmt.Println("weakly coherent, and local names are incoherent across clients.")
	return nil
}
