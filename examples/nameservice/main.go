// Nameservice: exports a naming tree over real TCP with the gob protocol,
// then demonstrates the coherence hazard of name caches — a plain cache
// serves a stale meaning after a rebinding, while the revision-tracked
// coherent cache converges after one round-trip.
package main

import (
	"fmt"
	"net"
	"os"

	"namecoherence/naming"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nameservice:", err)
		os.Exit(1)
	}
}

func run() error {
	w := naming.NewWorld()
	tr := naming.NewTree(w, "export")
	oldLs, err := tr.Create(naming.ParsePath("usr/bin/ls"), "v1")
	if err != nil {
		return err
	}
	if _, err := tr.Create(naming.ParsePath("etc/motd"), "hello"); err != nil {
		return err
	}

	server := naming.NewNameServer(w, tr.RootContext())
	watched := server.WatchExport(tr.Root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go server.Serve(ln)
	defer server.Close()
	fmt.Printf("name server on %s, watching %d directories\n", ln.Addr(), watched)

	plain, err := naming.DialNameServer("tcp", ln.Addr().String(),
		naming.WithResolveCache(16))
	if err != nil {
		return err
	}
	defer func() { _ = plain.Close() }()
	coherent, err := naming.DialNameServer("tcp", ln.Addr().String(),
		naming.WithCoherentResolveCache(16))
	if err != nil {
		return err
	}
	defer func() { _ = coherent.Close() }()

	p := naming.ParsePath("usr/bin/ls")
	warm := func(c *naming.NameClient, label string) error {
		e, err := c.Resolve(p)
		if err != nil {
			return err
		}
		fmt.Printf("  %-14s usr/bin/ls -> %v (%s)\n", label, e, w.Label(e))
		return nil
	}
	fmt.Println("\nboth clients resolve and cache usr/bin/ls:")
	if err := warm(plain, "plain cache:"); err != nil {
		return err
	}
	if err := warm(coherent, "coherent cache:"); err != nil {
		return err
	}

	// Rebind ls on the server side; the watched directory bumps the
	// revision automatically.
	binDir, err := tr.Lookup(naming.ParsePath("usr/bin"))
	if err != nil {
		return err
	}
	binCtx, _ := w.ContextOf(binDir)
	newLs := w.NewObject("ls-v2")
	binCtx.Bind("ls", newLs)
	fmt.Printf("\nserver rebinds usr/bin/ls: %v -> %v (revision now %d)\n",
		oldLs, newLs, server.Revision())

	// One unrelated round-trip lets the coherent client notice.
	if _, err := coherent.Resolve(naming.ParsePath("etc/motd")); err != nil {
		return err
	}
	if _, err := plain.Resolve(naming.ParsePath("etc/motd")); err != nil {
		return err
	}

	fmt.Println("\nafter one more round-trip each:")
	if err := warm(plain, "plain cache:"); err != nil {
		return err
	}
	if err := warm(coherent, "coherent cache:"); err != nil {
		return err
	}
	fmt.Println("\nthe plain cache still serves the stale entity; the coherent cache")
	fmt.Println("purged on the revision change and re-fetched the new meaning.")
	return nil
}
