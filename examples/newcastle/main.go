// Newcastle: builds the three-machine system of the paper's Figure 3 and
// demonstrates where coherence holds and breaks, including both
// remote-execution root policies.
package main

import (
	"fmt"
	"os"

	"namecoherence/naming"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "newcastle:", err)
		os.Exit(1)
	}
}

func run() error {
	w := naming.NewWorld()
	s, err := naming.NewNewcastle(w, "unix1", "unix2", "unix3")
	if err != nil {
		return err
	}
	for _, mn := range s.MachineNames() {
		m, err := s.Machine(mn)
		if err != nil {
			return err
		}
		if _, err := m.Tree.Create(naming.ParsePath("etc/passwd"), "users@"+mn); err != nil {
			return err
		}
	}

	p1, err := s.Spawn("unix1", "sh")
	if err != nil {
		return err
	}
	p2, err := s.Spawn("unix2", "sh")
	if err != nil {
		return err
	}

	show := func(p *naming.Process, name string) {
		e, err := p.Resolve(name)
		if err != nil {
			fmt.Printf("  %s on %-6s: %-28s -> error: %v\n",
				w.Label(p.Activity), p.Machine.Name, name, err)
			return
		}
		fmt.Printf("  %s on %-6s: %-28s -> %v (%s)\n",
			w.Label(p.Activity), p.Machine.Name, name, e, w.Label(e))
	}

	fmt.Println("the same '/' name denotes different files on different machines:")
	show(p1, "/etc/passwd")
	show(p2, "/etc/passwd")

	fmt.Println("\nnames through the super-root ('..') are coherent everywhere:")
	show(p1, "/../unix2/etc/passwd")
	show(p2, "/../unix2/etc/passwd")

	fmt.Println("\nthe mapping rule rewrites a name for another machine:")
	mapped, err := s.MapName("unix1", "unix2", "/etc/passwd")
	if err != nil {
		return err
	}
	fmt.Printf("  /etc/passwd on unix1 == %s on unix2\n", mapped)
	show(p2, mapped)

	fmt.Println("\nremote execution, root-of-invoker: parameters stay coherent:")
	childInv, err := s.RemoteExec(p1, "unix2", "rx", naming.RootOfInvoker)
	if err != nil {
		return err
	}
	show(p1, "/etc/passwd")
	show(childInv, "/etc/passwd")

	fmt.Println("\nremote execution, root-of-executor: local access, no coherence:")
	childExe, err := s.RemoteExec(p1, "unix2", "rx", naming.RootOfExecutor)
	if err != nil {
		return err
	}
	show(p1, "/etc/passwd")
	show(childExe, "/etc/passwd")
	return nil
}
