// Package namecoherence holds the top-level benchmark harness: one
// benchmark per experiment table (E1..E14, A1..A5 — see DESIGN.md and
// EXPERIMENTS.md) plus the microbenchmark ablations (A2: resolution cost
// vs. path depth; name-server round-trips with and without caching;
// sharded-cluster throughput vs. batch size).
package namecoherence

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"namecoherence/internal/cluster"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/experiments"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/netsim"
	"namecoherence/internal/pqi"
	"namecoherence/internal/remote"
)

// benchTable runs a table-producing experiment once per iteration.
func benchTable(b *testing.B, build func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := build()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1SourcesByRules(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E1(experiments.DefaultE1()), nil
	})
}

func BenchmarkE2ContextSelection(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E2(experiments.DefaultE2()), nil
	})
}

func BenchmarkE3Newcastle(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E3(experiments.DefaultE3())
	})
}

func BenchmarkE4SharedGraph(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E4(experiments.DefaultE4())
	})
}

func BenchmarkE5Federation(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E5(experiments.DefaultE5())
	})
}

func BenchmarkE6EmbeddedNames(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E6(experiments.DefaultE6())
	})
}

func BenchmarkE7PQIRenumber(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E7(experiments.DefaultE7())
	})
}

func BenchmarkE8PerProcess(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E8(experiments.DefaultE8())
	})
}

func BenchmarkE9WeakCoherence(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E9(experiments.DefaultE9())
	})
}

func BenchmarkE10ScopedSpaces(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E10(experiments.DefaultE10())
	})
}

func BenchmarkE12BoundaryTranslation(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E12(experiments.DefaultE12())
	})
}

func BenchmarkE11ReplicatedService(b *testing.B) {
	cfg := experiments.DefaultE11()
	cfg.ReplicaCounts = []int{2}
	cfg.Resolutions = 8
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E11(cfg)
	})
}

func BenchmarkE13ForkDivergence(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E13(experiments.DefaultE13())
	})
}

func BenchmarkA1NameServerCaching(b *testing.B) {
	cfg := experiments.DefaultA1()
	cfg.Lookups = 500 // keep individual iterations short
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.A1(cfg)
	})
}

func BenchmarkA3QualificationLevels(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.A3(experiments.DefaultA3())
	})
}

func BenchmarkA5RootBottleneck(b *testing.B) {
	cfg := experiments.DefaultA5()
	cfg.Lookups = 1000 // keep individual iterations short
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.A5(cfg)
	})
}

func BenchmarkA4CacheChurn(b *testing.B) {
	cfg := experiments.DefaultA4()
	cfg.Lookups = 300 // keep individual iterations short
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.A4(cfg)
	})
}

// BenchmarkA2ResolveDepth measures compound-name resolution cost as a
// function of path depth (ablation A2).
func BenchmarkA2ResolveDepth(b *testing.B) {
	for _, depth := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			w := core.NewWorld()
			tr := dirtree.New(w, "root")
			p := make(core.Path, depth)
			for i := 0; i < depth; i++ {
				p[i] = core.Name(fmt.Sprintf("d%02d", i))
			}
			if _, err := tr.MkdirAll(p); err != nil {
				b.Fatal(err)
			}
			rootCtx := tr.RootContext()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Resolve(rootCtx, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA2ResolveFanout measures resolution cost against directory
// fan-out (the map-lookup regime of wide directories).
func BenchmarkA2ResolveFanout(b *testing.B) {
	for _, fanout := range []int{4, 64, 1024} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			w := core.NewWorld()
			tr := dirtree.New(w, "root")
			for i := 0; i < fanout; i++ {
				if _, err := tr.Create(core.ParsePath(fmt.Sprintf("dir/f%05d", i)), "x"); err != nil {
					b.Fatal(err)
				}
			}
			p := core.ParsePath(fmt.Sprintf("dir/f%05d", fanout/2))
			rootCtx := tr.RootContext()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Resolve(rootCtx, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNameServerRoundTrip measures one remote resolution over a
// net.Pipe, with and without the client cache (the raw cost A1 aggregates).
func BenchmarkNameServerRoundTrip(b *testing.B) {
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			w := core.NewWorld()
			tr := dirtree.New(w, "export")
			if _, err := tr.Create(core.ParsePath("usr/bin/ls"), "x"); err != nil {
				b.Fatal(err)
			}
			server := nameserver.NewServer(w, tr.RootContext())
			serverEnd, clientEnd := net.Pipe()
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				server.ServeConn(serverEnd)
			}()
			var opts []nameserver.ClientOption
			if cached {
				opts = append(opts, nameserver.WithCache(16))
			}
			client := nameserver.NewClient(clientEnd, opts...)
			p := core.ParsePath("usr/bin/ls")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Resolve(p); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_ = client.Close()
			wg.Wait()
		})
	}
}

// delayedChunk is a chunk of proxied bytes due for delivery at a fixed
// time after it was read.
type delayedChunk struct {
	buf []byte
	due time.Time
}

// delayCopy forwards src to dst, delivering each chunk delay after it was
// read. Chunks in flight overlap — the delay models link latency, not
// bandwidth, which is exactly the distinction pipelining exploits.
func delayCopy(dst io.WriteCloser, src io.ReadCloser, delay time.Duration) {
	ch := make(chan delayedChunk, 1024)
	go func() {
		defer close(ch)
		for {
			buf := make([]byte, 32*1024)
			n, err := src.Read(buf)
			if n > 0 {
				ch <- delayedChunk{buf: buf[:n], due: time.Now().Add(delay)}
			}
			if err != nil {
				return
			}
		}
	}()
	for c := range ch {
		if d := time.Until(c.due); d > 0 {
			time.Sleep(d)
		}
		if _, err := dst.Write(c.buf); err != nil {
			break
		}
	}
	_ = dst.Close()
	_ = src.Close()
}

// delayProxy listens on loopback TCP and forwards every connection to
// backend, adding delay in each direction.
func delayProxy(b *testing.B, backend string, delay time.Duration) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", backend)
			if err != nil {
				_ = conn.Close()
				continue
			}
			go delayCopy(up, conn, delay)
			go delayCopy(conn, up, delay)
		}
	}()
	b.Cleanup(func() { _ = ln.Close() })
	return ln.Addr().String()
}

// BenchmarkNameServerPipelined measures multiplexed wire throughput at
// bounded in-flight depth over one shared connection: a semaphore caps
// how many requests are on the wire at a time, so inflight=1 is the old
// lock-step protocol's regime and inflight=64 a full pipeline, with
// RunParallel supplying enough goroutines to keep the pipeline at depth.
// A name server is remote by definition, so the headline sub-benchmarks
// run over loopback TCP through a delay proxy adding 1ms each way (a
// LAN-scale round-trip): that is the latency pipelining exists to hide.
// The raw/ variants skip the proxy and so measure pure codec + scheduling
// cost per message — on a single-CPU host both depths converge there,
// because zero-latency loopback leaves nothing to overlap. names/s is the
// figure of merit; the inflight=64 / inflight=1 ratio is the pipelining
// win.
func BenchmarkNameServerPipelined(b *testing.B) {
	w := core.NewWorld()
	tr := dirtree.New(w, "export")
	paths := make([]core.Path, 16)
	for i := range paths {
		p := fmt.Sprintf("srv/obj%02d", i)
		if _, err := tr.Create(core.ParsePath(p), "x"); err != nil {
			b.Fatal(err)
		}
		paths[i] = core.ParsePath(p)
	}
	run := func(b *testing.B, addr string, depth int) {
		client, err := nameserver.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		procs := runtime.GOMAXPROCS(0)
		b.SetParallelism((depth+procs-1)/procs + 1)
		sem := make(chan struct{}, depth)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				sem <- struct{}{}
				_, err := client.Resolve(paths[i%len(paths)])
				<-sem
				if err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "names/s")
	}
	server := nameserver.NewServer(w, tr.RootContext(), nameserver.WithWorkers(8))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()
	proxied := delayProxy(b, ln.Addr().String(), time.Millisecond)
	for _, depth := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("inflight=%d", depth), func(b *testing.B) {
			run(b, proxied, depth)
		})
	}
	for _, depth := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("raw/inflight=%d", depth), func(b *testing.B) {
			run(b, ln.Addr().String(), depth)
		})
	}
}

// BenchmarkE14ShardedCluster measures sharded-cluster resolution
// throughput versus shard count, batch size, and client concurrency (the
// raw wire cost E14's table aggregates). Each iteration resolves the
// 64-name slate conc times through one uncached client — batch=1 issues
// 64 round-trips per worker, batch=64 one per shard, and conc>1 workers
// multiplex over the same shared per-replica connections — so ns/op
// compares directly and names/s shows batching and pipelining amortize.
func BenchmarkE14ShardedCluster(b *testing.B) {
	const slate = 64
	var spec strings.Builder
	paths := make([]core.Path, 0, 128)
	for d := 0; d < 16; d++ {
		for f := 0; f < 8; f++ {
			p := fmt.Sprintf("sub%02d/f%02d", d, f)
			fmt.Fprintf(&spec, "file /%s %q\n", p, "x")
			paths = append(paths, core.ParsePath(p))
		}
	}
	for _, shards := range []int{1, 2, 4, 8} {
		w := core.NewWorld()
		cl, err := cluster.New(w, spec.String(), shards)
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range []int{1, 8, 64} {
			for _, conc := range []int{1, 8} {
				b.Run(fmt.Sprintf("shards=%d/batch=%d/conc=%d", shards, batch, conc), func(b *testing.B) {
					client, err := cluster.Dial("tcp", cl.Addrs()[0])
					if err != nil {
						b.Fatal(err)
					}
					defer client.Close()
					slate64 := func() error {
						for at := 0; at < slate; at += batch {
							results, err := client.ResolveBatch(paths[at : at+batch])
							if err != nil {
								return err
							}
							for _, res := range results {
								if res.Err != nil {
									return res.Err
								}
							}
						}
						return nil
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if conc == 1 {
							// Inline: per-iteration goroutine spawns would
							// charge stack growth to the serial baseline.
							if err := slate64(); err != nil {
								b.Fatal(err)
							}
							continue
						}
						var wg sync.WaitGroup
						errCh := make(chan error, conc)
						for g := 0; g < conc; g++ {
							wg.Add(1)
							go func() {
								defer wg.Done()
								if err := slate64(); err != nil {
									errCh <- err
								}
							}()
						}
						wg.Wait()
						select {
						case err := <-errCh:
							b.Fatal(err)
						default:
						}
					}
					b.StopTimer()
					b.ReportMetric(float64(slate*conc*b.N)/b.Elapsed().Seconds(), "names/s")
				})
			}
		}
		cl.Close()
	}
}

// BenchmarkWriteChurn measures wire mutation throughput through the
// cluster write path: each iteration is one bind/unbind cycle against the
// owning shard's primary, with asynchronous replication to the backup and
// — in the readers>0 variants — subscribed push-invalidated readers whose
// caches the churn keeps purging. writes/s is the figure of merit;
// invals/op shows the push fan-out cost riding on each commit.
func BenchmarkWriteChurn(b *testing.B) {
	var spec strings.Builder
	paths := make([]core.Path, 0, 32)
	for d := 0; d < 4; d++ {
		for f := 0; f < 8; f++ {
			p := fmt.Sprintf("sub%02d/f%02d", d, f)
			fmt.Fprintf(&spec, "file /%s %q\n", p, "x")
			paths = append(paths, core.ParsePath(p))
		}
	}
	for _, readers := range []int{0, 4} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			w := core.NewWorld()
			cl, err := cluster.NewReplicated(w, spec.String(), 2, 2)
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			writer, err := cluster.Dial("tcp", cl.Addrs()[0])
			if err != nil {
				b.Fatal(err)
			}
			defer writer.Close()
			subs := make([]*cluster.Client, readers)
			for i := range subs {
				subs[i], err = cluster.Dial("tcp", cl.Addrs()[0],
					cluster.WithLRU(64), cluster.WithPushInvalidation())
				if err != nil {
					b.Fatal(err)
				}
				defer subs[i].Close()
				for _, p := range paths {
					if _, err := subs[i].Resolve(p); err != nil {
						b.Fatal(err)
					}
				}
			}
			target, err := writer.Resolve(paths[0])
			if err != nil {
				b.Fatal(err)
			}
			dir := core.ParsePath("sub00")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := core.Name(fmt.Sprintf("churn%03d", i%512))
				if err := writer.Bind(dir, name, target); err != nil {
					b.Fatal(err)
				}
				if err := writer.Unbind(dir, name); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cl.DrainReplication()
			b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "writes/s")
			if readers > 0 {
				invals := 0
				for _, r := range subs {
					invals += r.Invalidations()
				}
				b.ReportMetric(float64(invals)/float64(b.N), "invals/op")
			}
		})
	}
}

// BenchmarkRemoteResolve compares in-process resolution of a cross-machine
// name against resolution through the target machine's name server over
// TCP loopback, with and without the client cache.
func BenchmarkRemoteResolve(b *testing.B) {
	w := core.NewWorld()
	c, err := remote.NewCluster(w, "m1", "m2")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	m2, err := c.System.Machine("m2")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m2.Tree.Create(core.ParsePath("etc/passwd"), "x"); err != nil {
		b.Fatal(err)
	}
	const name = "/../m2/etc/passwd"

	b.Run("in-process", func(b *testing.B) {
		p, err := c.Spawn("m1", "direct")
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		proc := p.Process()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := proc.Resolve(name); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wire-uncached", func(b *testing.B) {
		p, err := c.Spawn("m1", "wire")
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Resolve(name); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wire-cached", func(b *testing.B) {
		p, err := c.Spawn("m1", "wire-cache", nameserver.WithCache(16))
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Resolve(name); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPIDMap measures the R(sender) boundary mapping of one pid.
func BenchmarkPIDMap(b *testing.B) {
	sender := netsim.Addr{Net: 1, Mach: 2, Local: 3}
	receiver := netsim.Addr{Net: 2, Mach: 7, Local: 1}
	p := pqi.PID{Local: 9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pqi.Map(p, sender, receiver); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContextLookup measures one simple-name resolution (the model's
// innermost operation).
func BenchmarkContextLookup(b *testing.B) {
	w := core.NewWorld()
	c := core.NewContext()
	e := w.NewObject("o")
	c.Bind("name", e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := c.Lookup("name"); got != e {
			b.Fatal("wrong entity")
		}
	}
}
