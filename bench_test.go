// Package namecoherence holds the top-level benchmark harness: one
// benchmark per experiment table (E1..E14, A1..A5 — see DESIGN.md and
// EXPERIMENTS.md) plus the microbenchmark ablations (A2: resolution cost
// vs. path depth; name-server round-trips with and without caching;
// sharded-cluster throughput vs. batch size).
package namecoherence

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"namecoherence/internal/cluster"
	"namecoherence/internal/core"
	"namecoherence/internal/dirtree"
	"namecoherence/internal/experiments"
	"namecoherence/internal/nameserver"
	"namecoherence/internal/netsim"
	"namecoherence/internal/pqi"
	"namecoherence/internal/remote"
)

// benchTable runs a table-producing experiment once per iteration.
func benchTable(b *testing.B, build func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := build()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1SourcesByRules(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E1(experiments.DefaultE1()), nil
	})
}

func BenchmarkE2ContextSelection(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E2(experiments.DefaultE2()), nil
	})
}

func BenchmarkE3Newcastle(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E3(experiments.DefaultE3())
	})
}

func BenchmarkE4SharedGraph(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E4(experiments.DefaultE4())
	})
}

func BenchmarkE5Federation(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E5(experiments.DefaultE5())
	})
}

func BenchmarkE6EmbeddedNames(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E6(experiments.DefaultE6())
	})
}

func BenchmarkE7PQIRenumber(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E7(experiments.DefaultE7())
	})
}

func BenchmarkE8PerProcess(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E8(experiments.DefaultE8())
	})
}

func BenchmarkE9WeakCoherence(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E9(experiments.DefaultE9())
	})
}

func BenchmarkE10ScopedSpaces(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E10(experiments.DefaultE10())
	})
}

func BenchmarkE12BoundaryTranslation(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E12(experiments.DefaultE12())
	})
}

func BenchmarkE11ReplicatedService(b *testing.B) {
	cfg := experiments.DefaultE11()
	cfg.ReplicaCounts = []int{2}
	cfg.Resolutions = 8
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E11(cfg)
	})
}

func BenchmarkE13ForkDivergence(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.E13(experiments.DefaultE13())
	})
}

func BenchmarkA1NameServerCaching(b *testing.B) {
	cfg := experiments.DefaultA1()
	cfg.Lookups = 500 // keep individual iterations short
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.A1(cfg)
	})
}

func BenchmarkA3QualificationLevels(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.A3(experiments.DefaultA3())
	})
}

func BenchmarkA5RootBottleneck(b *testing.B) {
	cfg := experiments.DefaultA5()
	cfg.Lookups = 1000 // keep individual iterations short
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.A5(cfg)
	})
}

func BenchmarkA4CacheChurn(b *testing.B) {
	cfg := experiments.DefaultA4()
	cfg.Lookups = 300 // keep individual iterations short
	benchTable(b, func() (*experiments.Table, error) {
		return experiments.A4(cfg)
	})
}

// BenchmarkA2ResolveDepth measures compound-name resolution cost as a
// function of path depth (ablation A2).
func BenchmarkA2ResolveDepth(b *testing.B) {
	for _, depth := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			w := core.NewWorld()
			tr := dirtree.New(w, "root")
			p := make(core.Path, depth)
			for i := 0; i < depth; i++ {
				p[i] = core.Name(fmt.Sprintf("d%02d", i))
			}
			if _, err := tr.MkdirAll(p); err != nil {
				b.Fatal(err)
			}
			rootCtx := tr.RootContext()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Resolve(rootCtx, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA2ResolveFanout measures resolution cost against directory
// fan-out (the map-lookup regime of wide directories).
func BenchmarkA2ResolveFanout(b *testing.B) {
	for _, fanout := range []int{4, 64, 1024} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			w := core.NewWorld()
			tr := dirtree.New(w, "root")
			for i := 0; i < fanout; i++ {
				if _, err := tr.Create(core.ParsePath(fmt.Sprintf("dir/f%05d", i)), "x"); err != nil {
					b.Fatal(err)
				}
			}
			p := core.ParsePath(fmt.Sprintf("dir/f%05d", fanout/2))
			rootCtx := tr.RootContext()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Resolve(rootCtx, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNameServerRoundTrip measures one remote resolution over a
// net.Pipe, with and without the client cache (the raw cost A1 aggregates).
func BenchmarkNameServerRoundTrip(b *testing.B) {
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			w := core.NewWorld()
			tr := dirtree.New(w, "export")
			if _, err := tr.Create(core.ParsePath("usr/bin/ls"), "x"); err != nil {
				b.Fatal(err)
			}
			server := nameserver.NewServer(w, tr.RootContext())
			serverEnd, clientEnd := net.Pipe()
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				server.ServeConn(serverEnd)
			}()
			var opts []nameserver.ClientOption
			if cached {
				opts = append(opts, nameserver.WithCache(16))
			}
			client := nameserver.NewClient(clientEnd, opts...)
			p := core.ParsePath("usr/bin/ls")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Resolve(p); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_ = client.Close()
			wg.Wait()
		})
	}
}

// BenchmarkE14ShardedCluster measures sharded-cluster resolution
// throughput versus shard count and batch size (the raw wire cost E14's
// table aggregates). Each iteration resolves the same 64-name slate
// through an uncached client — batch=1 issues 64 round-trips, batch=64
// issues one per shard — so ns/op compares directly and names/s shows the
// amortization.
func BenchmarkE14ShardedCluster(b *testing.B) {
	const slate = 64
	var spec strings.Builder
	paths := make([]core.Path, 0, 128)
	for d := 0; d < 16; d++ {
		for f := 0; f < 8; f++ {
			p := fmt.Sprintf("sub%02d/f%02d", d, f)
			fmt.Fprintf(&spec, "file /%s %q\n", p, "x")
			paths = append(paths, core.ParsePath(p))
		}
	}
	for _, shards := range []int{1, 2, 4, 8} {
		w := core.NewWorld()
		cl, err := cluster.New(w, spec.String(), shards)
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("shards=%d/batch=%d", shards, batch), func(b *testing.B) {
				client, err := cluster.Dial("tcp", cl.Addrs()[0])
				if err != nil {
					b.Fatal(err)
				}
				defer client.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for at := 0; at < slate; at += batch {
						results, err := client.ResolveBatch(paths[at : at+batch])
						if err != nil {
							b.Fatal(err)
						}
						for _, res := range results {
							if res.Err != nil {
								b.Fatal(res.Err)
							}
						}
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(slate*b.N)/b.Elapsed().Seconds(), "names/s")
			})
		}
		cl.Close()
	}
}

// BenchmarkRemoteResolve compares in-process resolution of a cross-machine
// name against resolution through the target machine's name server over
// TCP loopback, with and without the client cache.
func BenchmarkRemoteResolve(b *testing.B) {
	w := core.NewWorld()
	c, err := remote.NewCluster(w, "m1", "m2")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	m2, err := c.System.Machine("m2")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m2.Tree.Create(core.ParsePath("etc/passwd"), "x"); err != nil {
		b.Fatal(err)
	}
	const name = "/../m2/etc/passwd"

	b.Run("in-process", func(b *testing.B) {
		p, err := c.Spawn("m1", "direct")
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		proc := p.Process()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := proc.Resolve(name); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wire-uncached", func(b *testing.B) {
		p, err := c.Spawn("m1", "wire")
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Resolve(name); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wire-cached", func(b *testing.B) {
		p, err := c.Spawn("m1", "wire-cache", nameserver.WithCache(16))
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Resolve(name); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPIDMap measures the R(sender) boundary mapping of one pid.
func BenchmarkPIDMap(b *testing.B) {
	sender := netsim.Addr{Net: 1, Mach: 2, Local: 3}
	receiver := netsim.Addr{Net: 2, Mach: 7, Local: 1}
	p := pqi.PID{Local: 9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pqi.Map(p, sender, receiver); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContextLookup measures one simple-name resolution (the model's
// innermost operation).
func BenchmarkContextLookup(b *testing.B) {
	w := core.NewWorld()
	c := core.NewContext()
	e := w.NewObject("o")
	c.Bind("name", e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := c.Lookup("name"); got != e {
			b.Fatal("wrong entity")
		}
	}
}
